(* Staged execution engine: a one-time pass lowering [Ast.program] into flat
   arrays of OCaml closures over an integer-slotted mutable execution
   context. Every header field, metadatum and standard-metadata slot is
   interned to an [int64 array] index with its bit offset and width
   precomputed, the parser FSM becomes a dispatch table over state indices,
   match-action tables compile to specialized matchers (exact -> hash
   lookup, everything else -> a presorted first-match scan that is provably
   equivalent to [Entry.select]), actions become closure chains over a
   positional argument vector, and the deparser emits into a reused
   [Bitstring.Builder].

   The contract is strict observational equivalence with the tree-walking
   interpreter ([Parse]/[Exec]/[Deparse]) under the same hooks, including
   exception messages and the order of counter/table/assert callbacks. The
   one documented deviation: action-parameter references are resolved with
   static (per-action) scoping, where the tree engine's environment stack
   would also find parameters of a dynamically enclosing action — a
   situation [Typecheck] rejects, so the engines agree on every well-typed
   program. *)

module Bitstring = Bitutil.Bitstring
module Builder = Bitstring.Builder

type engine = [ `Tree | `Staged ]

let default_engine_v =
  lazy
    (match Sys.getenv_opt "NETDEBUG_ENGINE" with
    | Some s when String.lowercase_ascii s = "tree" -> `Tree
    | Some _ | None -> `Staged)

let default_engine () = Lazy.force default_engine_v

let mask_of width =
  if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L

(* Replicates [Value.to_int], message included. *)
let to_int_checked v =
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    invalid_arg "Value.to_int: overflow";
  Int64.to_int v

(* Standard-metadata slots. *)
let std_slot = function
  | Ast.Ingress_port -> 0
  | Ast.Egress_spec -> 1
  | Ast.Packet_length -> 2
  | Ast.Parser_error -> 3

let n_std = 4

(* ------------------------------------------------------------------ *)
(* Layout: slot interning                                              *)
(* ------------------------------------------------------------------ *)

type layout = {
  header_ids : (string, int) Hashtbl.t;
  hdr_width : int array;  (* total bits per header *)
  hdr_slots : int array array;  (* per header: global slot per field, decl order *)
  hdr_offs : int array array;  (* per header: bit offset of each field *)
  hdr_fws : int array array;  (* per header: field widths *)
  field_ids : (string, int) Hashtbl.t;  (* "hdr.fld" -> global slot *)
  slot_width : int array;
  slot_mask : int64 array;
  nslots : int;
  meta_ids : (string, int) Hashtbl.t;
  meta_mask : int64 array;
  meta_width : int array;
}

let build_layout (p : Ast.program) =
  let header_ids = Hashtbl.create 8 and field_ids = Hashtbl.create 16 in
  let nh = List.length p.Ast.p_headers in
  let hdr_width = Array.make nh 0 in
  let hdr_slots = Array.make nh [||] in
  let hdr_offs = Array.make nh [||] in
  let hdr_fws = Array.make nh [||] in
  let widths_rev = ref [] and nslots = ref 0 in
  List.iteri
    (fun hid (hd : Ast.header_decl) ->
      (* duplicate names: first declaration wins, like [Ast.find_header] *)
      if not (Hashtbl.mem header_ids hd.h_name) then Hashtbl.add header_ids hd.h_name hid;
      let nf = List.length hd.h_fields in
      let slots = Array.make nf 0 and offs = Array.make nf 0 and fws = Array.make nf 0 in
      let off = ref 0 in
      List.iteri
        (fun i (f : Ast.field_decl) ->
          let slot = !nslots in
          incr nslots;
          widths_rev := f.f_width :: !widths_rev;
          slots.(i) <- slot;
          offs.(i) <- !off;
          fws.(i) <- f.f_width;
          off := !off + f.f_width;
          let key = hd.h_name ^ "." ^ f.f_name in
          if Hashtbl.find_opt header_ids hd.h_name = Some hid && not (Hashtbl.mem field_ids key)
          then Hashtbl.add field_ids key slot)
        hd.h_fields;
      hdr_width.(hid) <- !off;
      hdr_slots.(hid) <- slots;
      hdr_offs.(hid) <- offs;
      hdr_fws.(hid) <- fws)
    p.Ast.p_headers;
  let slot_width = Array.of_list (List.rev !widths_rev) in
  let meta_ids = Hashtbl.create 8 in
  let nm = List.length p.Ast.p_metadata in
  let meta_width = Array.make nm 0 in
  List.iteri
    (fun i (f : Ast.field_decl) ->
      if not (Hashtbl.mem meta_ids f.f_name) then Hashtbl.add meta_ids f.f_name i;
      meta_width.(i) <- f.f_width)
    p.Ast.p_metadata;
  {
    header_ids;
    hdr_width;
    hdr_slots;
    hdr_offs;
    hdr_fws;
    field_ids;
    slot_width;
    slot_mask = Array.map mask_of slot_width;
    nslots = !nslots;
    meta_ids;
    meta_mask = Array.map mask_of meta_width;
    meta_width;
  }

let header_id lay h = Hashtbl.find_opt lay.header_ids h

let field_slot lay h f = Hashtbl.find_opt lay.field_ids (h ^ "." ^ f)

(* ------------------------------------------------------------------ *)
(* Compiled program and execution context                              *)
(* ------------------------------------------------------------------ *)

type bound = { b_name : string; b_exec : inst -> unit }

and matcher =
  | M_empty
  | M_hash of (int, bound) Hashtbl.t
  | M_scan of {
      n : int;
      nk : int;
      masks : int64 array;  (* row-major [n * nk] *)
      vals : int64 array;
      bounds : bound array;
    }
  | M_fallback of (Entry.t * bound) list  (* exact [Entry.select] replica *)

and tstate = {
  mutable ts_gen : int;
  mutable ts_m : matcher;  (* legacy matchers (NETDEBUG_CLASSIFIER=scan) *)
  mutable ts_slot : Runtime.tslot option;  (* pinned on first apply *)
  mutable ts_cls : Classifier.t option;  (* shared incremental classifier *)
  mutable ts_bounds : bound array;  (* action closures, dense by entry id *)
}

and cstate = {
  cs_id : int;  (* state-name id, for visited tracking *)
  cs_extracts : cextract array;
  cs_trans : inst -> int;  (* >=0 next state; -1 accept; -2 reject; <=-3 bad *)
}

and cextract = {
  ex_hid : int;  (* -1: undeclared, raise with [ex_name] *)
  ex_name : string;
  ex_width : int;
  ex_slots : int array;
  ex_offs : int array;
  ex_fws : int array;
}

and cemit = { em_hid : int; em_name : string; em_slots : int array; em_fws : int array }

and t = {
  cp_prog : Ast.program;
  lay : layout;
  counter_names : string array;
  assert_msgs : string array;
  table_names : string array;
  state_names : string array;
  reg_decls : Ast.register_decl array;
  n_tables : int;
  scratch_keys : int;
  max_visits : int;
  cp_ingress : (inst -> unit) array;
  cp_egress : (inst -> unit) array;
  pstates : cstate array;
  bad_pstates : string array;  (* undeclared transition targets *)
  on_reject_continue : bool;
  ck_verify : (inst -> bool) option;  (* present iff verification applies *)
  ck_update : (inst -> unit) option;
  emits : cemit array;
  base_always_miss : string -> bool;
}

and inst = {
  cp : t;
  fields : int64 array;
  meta : int64 array;
  std : int64 array;
  valid : bool array;
  mutable cur_args : int64 array;
  mutable in_egress : bool;
  mutable pkt : Bitstring.t;
  mutable pos : int;
  mutable payload_off : int;
  mutable p_accepted : bool;
  mutable p_error : int;
  mutable track_states : bool;
  visited : int array;
  mutable nvisited : int;
  kscratch : int64 array;
  tstates : tstate array;
  i_runtime : Runtime.t;
  mutable regs : (int * Value.t array) array;
  ck_scratch : Builder.t;
  out_buf : Builder.t;
  mutable always_miss : string -> bool;
  mutable on_count : int -> unit;
  mutable on_assert : bool -> int -> unit;
  mutable on_table : int -> bool -> string -> unit;
}

let empty_args : int64 array = [||]

(* Placeholder in the per-id bound cache: ids the classifier has not yet
   returned. Compared physically, never executed. *)
let null_bound = { b_name = ""; b_exec = (fun _ -> invalid_arg "Compilecore: null bound") }

let run_ops (ops : (inst -> unit) array) st =
  for i = 0 to Array.length ops - 1 do
    (Array.unsafe_get ops i) st
  done

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

(* A compiled expression: static width (mirroring [Value]'s width algebra,
   where arithmetic takes the LEFT operand's width) plus an evaluator.
   Constructs the tree engine rejects at evaluation time compile to
   closures raising the identical message at the identical point. *)
type cexpr = { cw : int; ce : inst -> int64 }

let raising_expr msg = { cw = 1; ce = (fun _ -> invalid_arg msg) }

type compile_ctx = {
  cc_lay : layout;
  cc_hooks : Exec.hooks;
  cc_counter_ids : (string, int) Hashtbl.t;
  mutable cc_counters_rev : string list;
  mutable cc_ncounters : int;
  cc_assert_ids : (string, int) Hashtbl.t;
  mutable cc_asserts_rev : string list;
  mutable cc_nasserts : int;
}

let intern_counter cc name =
  match Hashtbl.find_opt cc.cc_counter_ids name with
  | Some i -> i
  | None ->
      let i = cc.cc_ncounters in
      Hashtbl.add cc.cc_counter_ids name i;
      cc.cc_counters_rev <- name :: cc.cc_counters_rev;
      cc.cc_ncounters <- i + 1;
      i

let intern_assert cc msg =
  match Hashtbl.find_opt cc.cc_assert_ids msg with
  | Some i -> i
  | None ->
      let i = cc.cc_nasserts in
      Hashtbl.add cc.cc_assert_ids msg i;
      cc.cc_asserts_rev <- msg :: cc.cc_asserts_rev;
      cc.cc_nasserts <- i + 1;
      i

(* [params]: positional (name, (index, width)) scope of the enclosing
   action body, [] elsewhere. *)
let rec compile_expr cc params (e : Ast.expr) : cexpr =
  let lay = cc.cc_lay in
  match e with
  | Ast.Const v ->
      let x = Value.to_int64 v in
      { cw = Value.width v; ce = (fun _ -> x) }
  | Ast.Field (h, f) -> (
      match header_id lay h with
      | None -> raising_expr (Printf.sprintf "Env: undeclared header %s" h)
      | Some _ -> (
          match field_slot lay h f with
          | None -> raising_expr (Printf.sprintf "Env: undeclared field %s.%s" h f)
          | Some slot ->
              (* invariant: an invalid header's slots hold zero, so a plain
                 load implements [Env.get_field]'s invalid-reads-zero rule *)
              { cw = lay.slot_width.(slot); ce = (fun st -> Array.unsafe_get st.fields slot) }))
  | Ast.Meta m -> (
      match Hashtbl.find_opt lay.meta_ids m with
      | None -> raising_expr (Printf.sprintf "Env: undeclared metadata %s" m)
      | Some i -> { cw = lay.meta_width.(i); ce = (fun st -> Array.unsafe_get st.meta i) })
  | Ast.Std sf ->
      let i = std_slot sf in
      { cw = Ast.std_width sf; ce = (fun st -> Array.unsafe_get st.std i) }
  | Ast.Param p -> (
      match List.assoc_opt p params with
      | Some (i, w) -> { cw = w; ce = (fun st -> Array.unsafe_get st.cur_args i) }
      | None -> raising_expr (Printf.sprintf "Env: unbound action parameter %s" p))
  | Ast.Valid h -> (
      match header_id lay h with
      | None -> raising_expr (Printf.sprintf "Env: undeclared header %s" h)
      | Some hid ->
          { cw = 1; ce = (fun st -> if Array.unsafe_get st.valid hid then 1L else 0L) })
  | Ast.Un (Ast.BNot, e1) ->
      let c1 = compile_expr cc params e1 in
      let m = mask_of c1.cw in
      { cw = c1.cw; ce = (fun st -> Int64.logand (Int64.lognot (c1.ce st)) m) }
  | Ast.Un (Ast.LNot, e1) ->
      let c1 = compile_expr cc params e1 in
      { cw = 1; ce = (fun st -> if c1.ce st = 0L then 1L else 0L) }
  | Ast.Slice (e1, msb, lsb) ->
      let c1 = compile_expr cc params e1 in
      if lsb < 0 || msb < lsb || msb >= c1.cw then
        (* [Value.slice] rejects after the operand evaluates *)
        { cw = 1;
          ce =
            (fun st ->
              ignore (c1.ce st);
              invalid_arg "Value.slice");
        }
      else begin
        let w = msb - lsb + 1 in
        let m = mask_of w in
        { cw = w; ce = (fun st -> Int64.logand (Int64.shift_right_logical (c1.ce st) lsb) m) }
      end
  | Ast.Concat (e1, e2) ->
      let c1 = compile_expr cc params e1 and c2 = compile_expr cc params e2 in
      if c1.cw + c2.cw > 64 then
        { cw = 1;
          ce =
            (fun st ->
              ignore (c1.ce st);
              ignore (c2.ce st);
              invalid_arg "Value.concat: width");
        }
      else
        let sh = c2.cw in
        { cw = c1.cw + c2.cw;
          ce = (fun st -> Int64.logor (Int64.shift_left (c1.ce st) sh) (c2.ce st));
        }
  | Ast.Bin (Ast.LAnd, e1, e2) ->
      let c1 = compile_expr cc params e1 and c2 = compile_expr cc params e2 in
      { cw = 1; ce = (fun st -> if c1.ce st <> 0L then (if c2.ce st <> 0L then 1L else 0L) else 0L) }
  | Ast.Bin (Ast.LOr, e1, e2) ->
      let c1 = compile_expr cc params e1 and c2 = compile_expr cc params e2 in
      { cw = 1; ce = (fun st -> if c1.ce st <> 0L then 1L else if c2.ce st <> 0L then 1L else 0L) }
  | Ast.Bin (((Ast.Shl | Ast.Shr) as op), e1, e2) ->
      let c1 = compile_expr cc params e1 and c2 = compile_expr cc params e2 in
      let shift_amount = cc.cc_hooks.Exec.shift_amount in
      let m = mask_of c1.cw in
      let left = op = Ast.Shl in
      { cw = c1.cw;
        ce =
          (fun st ->
            (* amount first, as the tree engine does *)
            let n = shift_amount (to_int_checked (c2.ce st)) in
            let v = c1.ce st in
            if n >= 64 then 0L
            else if left then Int64.logand (Int64.shift_left v n) m
            else (* operands are normalized, logical shift is unsigned *)
              Int64.logand (Int64.shift_right_logical v n) m);
      }
  | Ast.Bin (op, e1, e2) -> (
      let c1 = compile_expr cc params e1 and c2 = compile_expr cc params e2 in
      let m = mask_of c1.cw in
      let w = c1.cw in
      match op with
      | Ast.Add -> { cw = w; ce = (fun st -> let a = c1.ce st in Int64.logand (Int64.add a (c2.ce st)) m) }
      | Ast.Sub -> { cw = w; ce = (fun st -> let a = c1.ce st in Int64.logand (Int64.sub a (c2.ce st)) m) }
      | Ast.Mul -> { cw = w; ce = (fun st -> let a = c1.ce st in Int64.logand (Int64.mul a (c2.ce st)) m) }
      | Ast.BAnd -> { cw = w; ce = (fun st -> let a = c1.ce st in Int64.logand a (c2.ce st)) }
      | Ast.BOr -> { cw = w; ce = (fun st -> let a = c1.ce st in Int64.logand (Int64.logor a (c2.ce st)) m) }
      | Ast.BXor -> { cw = w; ce = (fun st -> let a = c1.ce st in Int64.logand (Int64.logxor a (c2.ce st)) m) }
      | Ast.Eq -> { cw = 1; ce = (fun st -> let a = c1.ce st in if a = c2.ce st then 1L else 0L) }
      | Ast.Neq -> { cw = 1; ce = (fun st -> let a = c1.ce st in if a <> c2.ce st then 1L else 0L) }
      | Ast.Lt ->
          { cw = 1; ce = (fun st -> let a = c1.ce st in if Int64.unsigned_compare a (c2.ce st) < 0 then 1L else 0L) }
      | Ast.Le ->
          { cw = 1; ce = (fun st -> let a = c1.ce st in if Int64.unsigned_compare a (c2.ce st) <= 0 then 1L else 0L) }
      | Ast.Gt ->
          { cw = 1; ce = (fun st -> let a = c1.ce st in if Int64.unsigned_compare a (c2.ce st) > 0 then 1L else 0L) }
      | Ast.Ge ->
          { cw = 1; ce = (fun st -> let a = c1.ce st in if Int64.unsigned_compare a (c2.ce st) >= 0 then 1L else 0L) }
      | Ast.Shl | Ast.Shr | Ast.LAnd | Ast.LOr -> assert false)

(* An lvalue setter; the value argument carries the RHS already evaluated,
   so raising setters still evaluate the RHS first, like the tree engine. *)
let compile_lvalue cc (lv : Ast.lvalue) : inst -> int64 -> unit =
  let lay = cc.cc_lay in
  match lv with
  | Ast.LField (h, f) -> (
      match header_id lay h with
      | None ->
          let msg = Printf.sprintf "Env: undeclared header %s" h in
          fun _ _ -> invalid_arg msg
      | Some hid -> (
          match field_slot lay h f with
          | None ->
              let msg = Printf.sprintf "Env: undeclared field %s.%s" h f in
              fun _ _ -> invalid_arg msg
          | Some slot ->
              let m = lay.slot_mask.(slot) in
              fun st v ->
                (* [Env.set_field] is a no-op while the header is invalid *)
                if Array.unsafe_get st.valid hid then
                  Array.unsafe_set st.fields slot (Int64.logand v m)))
  | Ast.LMeta mname -> (
      match Hashtbl.find_opt lay.meta_ids mname with
      | None ->
          let msg = Printf.sprintf "Env: undeclared metadata %s" mname in
          fun _ _ -> invalid_arg msg
      | Some i ->
          let m = lay.meta_mask.(i) in
          fun st v -> Array.unsafe_set st.meta i (Int64.logand v m))
  | Ast.LStd sf ->
      let i = std_slot sf in
      let m = mask_of (Ast.std_width sf) in
      fun st v -> Array.unsafe_set st.std i (Int64.logand v m)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

(* [ca_ops] is mutable because action signatures are interned in one pass
   (so any [Apply] can type its bounds) and the bodies filled in a second:
   a bound built between the passes reads the final body through the
   record. *)
type caction = { ca_pw : int array; mutable ca_ops : (inst -> unit) array }

let make_bound (action_ids : (string, int) Hashtbl.t) (cactions : caction array) name
    (raw_args : Value.t list) =
  match Hashtbl.find_opt action_ids name with
  | None ->
      let msg = Printf.sprintf "Exec: undeclared action %s" name in
      { b_name = name; b_exec = (fun _ -> invalid_arg msg) }
  | Some aid ->
      let ca = cactions.(aid) in
      if List.length raw_args <> Array.length ca.ca_pw then begin
        let msg = Printf.sprintf "Exec: action %s arity mismatch" name in
        { b_name = name; b_exec = (fun _ -> invalid_arg msg) }
      end
      else if Array.exists (fun w -> w < 1 || w > 64) ca.ca_pw then
        (* the tree engine's per-run [Value.make] on the arguments *)
        { b_name = name; b_exec = (fun _ -> invalid_arg "Value.make: width") }
      else begin
        (* re-mask the arguments to the declared parameter widths once,
           here, rather than per run as [Exec.run_action] does *)
        let args = Array.of_list (List.map Value.to_int64 raw_args) in
        Array.iteri (fun i v -> args.(i) <- Int64.logand v (mask_of ca.ca_pw.(i))) args;
        {
          b_name = name;
          b_exec =
            (fun st ->
              let saved = st.cur_args in
              st.cur_args <- args;
              (try run_ops ca.ca_ops st
               with e ->
                 st.cur_args <- saved;
                 raise e);
              st.cur_args <- saved);
        }
      end

(* Entry lowering for the fast scan: per (entry key, table key-width) pair,
   a (mask, value) test over the raw key value such that
   [key land mask = value] iff [Entry.key_matches] holds. *)
let scan_cell ~degrade kw (mk : Entry.mkey) =
  match mk with
  | Entry.Exact_v e -> (-1L, Value.to_int64 e)
  | Entry.Ternary_v (e, m) ->
      if degrade then (-1L, Value.to_int64 e)
      else
        let mr = Value.to_int64 m in
        (mr, Int64.logand (Value.to_int64 e) mr)
  | Entry.Lpm_v (e, len) ->
      if len = 0 then (0L, 0L)
      else begin
        let shift = kw - len in
        (* len > kw raises per lookup in the tree engine; callers route
           such entries to the [M_fallback] replica instead *)
        assert (shift >= 0);
        let m = Int64.shift_left (mask_of len) shift in
        (m, Int64.logand (Int64.logand (Value.to_int64 e) (mask_of kw)) m)
      end

(* Would evaluating this entry against [nk] keys of widths [kws] ever raise
   inside [Entry.keys_match]? (Only [Value.matches_prefix] with
   [prefix_len > key width] can.) Position pairing mirrors [keys_match]:
   keys beyond the shorter list are never evaluated. *)
let entry_may_raise kws nk (e : Entry.t) =
  let rec go k = function
    | [] -> false
    | _ when k >= nk -> false
    | Entry.Lpm_v (_, len) :: rest -> (len > 0 && len > kws.(k)) || go (k + 1) rest
    | (Entry.Exact_v _ | Entry.Ternary_v _) :: rest -> go (k + 1) rest
  in
  go 0 e.Entry.keys

let compile_table action_ids cactions ~degrade (kws : int array) =
  let nk = Array.length kws in
  fun (ts : tstate) (slot : Runtime.tslot) (gen : int) ->
    let entries = Runtime.tslot_entries slot in
    ts.ts_gen <- gen;
    if entries = [] then ts.ts_m <- M_empty
    else if List.exists (entry_may_raise kws nk) entries then
      ts.ts_m <-
        M_fallback
          (List.map (fun e -> (e, make_bound action_ids cactions e.Entry.action e.Entry.args)) entries)
    else begin
      let arr = Array.of_list entries in
      let n = Array.length arr in
      let prio = Array.map (fun e -> e.Entry.priority) arr in
      let spec = Array.map Entry.specificity arr in
      (* winner order: priority desc, specificity desc, install asc — the
         first match in this order is exactly [Entry.select]'s answer *)
      let order = Array.init n Fun.id in
      Array.sort
        (fun i j ->
          if prio.(i) <> prio.(j) then compare prio.(j) prio.(i)
          else if spec.(i) <> spec.(j) then compare spec.(j) spec.(i)
          else compare i j)
        order;
      let single_exact =
        nk = 1 && kws.(0) <= 62
        && Array.for_all (fun e -> match e.Entry.keys with [ Entry.Exact_v _ ] -> true | _ -> false) arr
      in
      if single_exact then begin
        let h = Hashtbl.create (2 * n) in
        Array.iter
          (fun i ->
            match arr.(i).Entry.keys with
            | [ Entry.Exact_v v ] ->
                let raw = Value.to_int64 v in
                (* values outside the key's range can never match *)
                if Int64.unsigned_compare raw (mask_of kws.(0)) <= 0 then begin
                  let k = Int64.to_int raw in
                  if not (Hashtbl.mem h k) then
                    Hashtbl.add h k (make_bound action_ids cactions arr.(i).Entry.action arr.(i).Entry.args)
                end
            | _ -> assert false)
          order;
        ts.ts_m <- M_hash h
      end
      else begin
        (* drop rows that can never match (key-arity mismatch); they have
           no effects in the tree engine either once raising is excluded *)
        let rows =
          Array.of_list (List.filter (fun e -> List.length e.Entry.keys = nk) (Array.to_list (Array.map (fun i -> arr.(i)) order)))
        in
        let rn = Array.length rows in
        let masks = Array.make (rn * nk) 0L and vals = Array.make (rn * nk) 0L in
        let bounds =
          Array.map (fun e -> make_bound action_ids cactions e.Entry.action e.Entry.args) rows
        in
        Array.iteri
          (fun r e ->
            List.iteri
              (fun k mk ->
                let m, v = scan_cell ~degrade kws.(k) mk in
                masks.((r * nk) + k) <- m;
                vals.((r * nk) + k) <- v)
              e.Entry.keys)
          rows;
        ts.ts_m <- M_scan { n = rn; nk; masks; vals; bounds }
      end
    end

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let rec compile_stmts cc (prog : Ast.program) action_ids cactions degrade tbl_ids params stmts =
  Array.of_list (List.map (compile_stmt cc prog action_ids cactions degrade tbl_ids params) stmts)

and compile_stmt cc prog action_ids cactions degrade tbl_ids params (s : Ast.stmt) : inst -> unit =
  let lay = cc.cc_lay in
  match s with
  | Ast.Nop -> fun _ -> ()
  | Ast.Assign (lv, e) ->
      let ce = compile_expr cc params e in
      let set = compile_lvalue cc lv in
      fun st -> set st (ce.ce st)
  | Ast.If (cond, then_, else_) ->
      let cc_cond = compile_expr cc params cond in
      let ct = compile_stmts cc prog action_ids cactions degrade tbl_ids params then_ in
      let ce = compile_stmts cc prog action_ids cactions degrade tbl_ids params else_ in
      fun st -> if cc_cond.ce st <> 0L then run_ops ct st else run_ops ce st
  | Ast.SetValid h -> (
      match header_id lay h with
      | None ->
          let msg = Printf.sprintf "Env: undeclared header %s" h in
          fun _ -> invalid_arg msg
      | Some hid -> fun st -> st.valid.(hid) <- true)
  | Ast.SetInvalid h -> (
      match header_id lay h with
      | None ->
          let msg = Printf.sprintf "Env: undeclared header %s" h in
          fun _ -> invalid_arg msg
      | Some hid ->
          let slots = lay.hdr_slots.(hid) in
          fun st ->
            st.valid.(hid) <- false;
            (* restore the invalid-header slots-are-zero invariant *)
            for i = 0 to Array.length slots - 1 do
              st.fields.(slots.(i)) <- 0L
            done)
  | Ast.MarkToDrop ->
      let de_ing = cc.cc_hooks.Exec.drop_effective Exec.Ingress in
      let de_eg = cc.cc_hooks.Exec.drop_effective Exec.Egress in
      let drop = Int64.of_int Stdmeta.drop_port in
      fun st ->
        if if st.in_egress then de_eg else de_ing then st.std.(std_slot Ast.Egress_spec) <- drop
  | Ast.Count c ->
      let id = intern_counter cc c in
      fun st -> st.on_count id
  | Ast.Assert (cond, msg) ->
      let cc_cond = compile_expr cc params cond in
      let id = intern_assert cc msg in
      fun st -> st.on_assert (cc_cond.ce st <> 0L) id
  | Ast.RegRead (lv, reg, idx) -> (
      let cidx = compile_expr cc params idx in
      match reg_id prog reg with
      | None ->
          let msg = Printf.sprintf "Regstate: undeclared register %s" reg in
          fun st ->
            ignore (to_int_checked (cidx.ce st));
            invalid_arg msg
      | Some rid ->
          let set = compile_lvalue cc lv in
          fun st ->
            let i = to_int_checked (cidx.ce st) in
            let _, cells = Array.unsafe_get st.regs rid in
            let v = if i < 0 || i >= Array.length cells then 0L else Value.to_int64 cells.(i) in
            set st v)
  | Ast.RegWrite (reg, idx, value) -> (
      let cidx = compile_expr cc params idx in
      let cval = compile_expr cc params value in
      match reg_id prog reg with
      | None ->
          let msg = Printf.sprintf "Regstate: undeclared register %s" reg in
          fun st ->
            ignore (to_int_checked (cidx.ce st));
            ignore (cval.ce st);
            invalid_arg msg
      | Some rid ->
          fun st ->
            let i = to_int_checked (cidx.ce st) in
            let v = cval.ce st in
            let w, cells = Array.unsafe_get st.regs rid in
            if i >= 0 && i < Array.length cells then cells.(i) <- Value.make ~width:w v)
  | Ast.Apply tname -> (
      match Hashtbl.find_opt tbl_ids tname with
      | None ->
          let msg = Printf.sprintf "Exec: undeclared table %s" tname in
          fun _ -> invalid_arg msg
      | Some tid ->
          let tbl = List.nth prog.Ast.p_tables tid in
          (* key expressions compile per apply site so an action-body apply
             sees that action's parameter scope, as the tree engine does *)
          let keys =
            Array.of_list (List.map (fun (e, _) -> compile_expr cc params e) tbl.Ast.t_keys)
          in
          let kws = Array.map (fun c -> c.cw) keys in
          let nk = Array.length keys in
          let rebuild = compile_table action_ids cactions ~degrade kws in
          let default_b =
            make_bound action_ids cactions tbl.Ast.t_default_action tbl.Ast.t_default_args
          in
          let dname = tbl.Ast.t_default_action in
          (* resolved once per process: flipping the classifier off is a
             process-level experiment control, not a runtime toggle *)
          let use_cls = Classifier.enabled () in
          (* grow-on-demand per-id cache of compiled action closures; ids
             are never reused, so entries here can never go stale *)
          let bound_for ts slot id =
            let bs =
              if id < Array.length ts.ts_bounds then ts.ts_bounds
              else begin
                let nbs = Array.make (max 16 (2 * (id + 1))) null_bound in
                Array.blit ts.ts_bounds 0 nbs 0 (Array.length ts.ts_bounds);
                ts.ts_bounds <- nbs;
                nbs
              end
            in
            let b = Array.unsafe_get bs id in
            if b != null_bound then b
            else begin
              let e = Runtime.tslot_entry slot id in
              let b = make_bound action_ids cactions e.Entry.action e.Entry.args in
              bs.(id) <- b;
              b
            end
          in
          fun st ->
            for i = 0 to nk - 1 do
              st.kscratch.(i) <- (Array.unsafe_get keys i).ce st
            done;
            let ts = Array.unsafe_get st.tstates tid in
            let slot =
              match ts.ts_slot with
              | Some s -> s
              | None ->
                  let s = Runtime.tslot st.i_runtime tname in
                  ts.ts_slot <- Some s;
                  s
            in
            if use_cls then begin
              (* incremental mode: the classifier is patched in place by
                 the control plane, so there is nothing to invalidate *)
              let cls =
                match ts.ts_cls with
                | Some c -> c
                | None ->
                    let c = Runtime.tslot_classifier slot ~kws ~degrade in
                    ts.ts_cls <- Some c;
                    c
              in
              if st.always_miss tname then begin
                st.on_table tid false dname;
                default_b.b_exec st
              end
              else begin
                let id = Classifier.find_raw cls st.kscratch in
                if id >= 0 then begin
                  let b = bound_for ts slot id in
                  st.on_table tid true b.b_name;
                  b.b_exec st
                end
                else begin
                  st.on_table tid false dname;
                  default_b.b_exec st
                end
              end
            end
            else begin
              (* scan mode: legacy matchers, invalidated per table — churn
                 on another table no longer forces a rebuild here *)
              let g = Runtime.tslot_gen slot in
              if ts.ts_gen <> g then rebuild ts slot g;
              if st.always_miss tname then begin
                st.on_table tid false dname;
                default_b.b_exec st
              end
              else begin
                match ts.ts_m with
              | M_empty ->
                  st.on_table tid false dname;
                  default_b.b_exec st
              | M_hash h -> (
                  let raw = st.kscratch.(0) in
                  (* keys are <= 62 bits wide here, so the int conversion
                     is exact *)
                  match Hashtbl.find h (Int64.to_int raw) with
                  | b ->
                      st.on_table tid true b.b_name;
                      b.b_exec st
                  | exception Not_found ->
                      st.on_table tid false dname;
                      default_b.b_exec st)
              | M_scan { n; nk; masks; vals; bounds } ->
                  let row = ref 0 and found = ref (-1) in
                  while !found < 0 && !row < n do
                    let base = !row * nk in
                    let k = ref 0 in
                    while
                      !k < nk
                      && Int64.logand st.kscratch.(!k) (Array.unsafe_get masks (base + !k))
                         = Array.unsafe_get vals (base + !k)
                    do
                      incr k
                    done;
                    if !k = nk then found := !row else incr row
                  done;
                  if !found >= 0 then begin
                    let b = Array.unsafe_get bounds !found in
                    st.on_table tid true b.b_name;
                    b.b_exec st
                  end
                  else begin
                    st.on_table tid false dname;
                    default_b.b_exec st
                  end
              | M_fallback ebounds ->
                  (* exact replica of the tree lookup, including its raise
                     behaviour on pathological LPM entries *)
                  let vs =
                    Array.to_list (Array.mapi (fun i w -> Value.make ~width:w st.kscratch.(i)) kws)
                  in
                  let entries = List.map fst ebounds in
                  (match Entry.select ~degrade_ternary_to_exact:degrade entries vs with
                  | Some e ->
                      let b = List.assq e ebounds in
                      st.on_table tid true b.b_name;
                      b.b_exec st
                  | None ->
                      st.on_table tid false dname;
                      default_b.b_exec st)
              end
            end)

and reg_id (prog : Ast.program) name =
  let rec go i = function
    | [] -> None
    | (r : Ast.register_decl) :: rest -> if String.equal r.r_name name then Some i else go (i + 1) rest
  in
  go 0 prog.Ast.p_registers

(* ------------------------------------------------------------------ *)
(* Program compilation                                                 *)
(* ------------------------------------------------------------------ *)

let compile ?(exec_hooks = Exec.spec_hooks) ?(parse_hooks = Parse.spec_hooks)
    ?update_ipv4_checksum (prog : Ast.program) =
  let lay = build_layout prog in
  let cc =
    {
      cc_lay = lay;
      cc_hooks = exec_hooks;
      cc_counter_ids = Hashtbl.create 8;
      cc_counters_rev = [];
      cc_ncounters = 0;
      cc_assert_ids = Hashtbl.create 8;
      cc_asserts_rev = [];
      cc_nasserts = 0;
    }
  in
  List.iter (fun c -> ignore (intern_counter cc c)) prog.Ast.p_counters;
  let degrade = exec_hooks.Exec.degrade_ternary_to_exact in
  (* tables: ids by declaration order, names resolved like [find_table]
     (first declaration wins) *)
  let tbl_ids = Hashtbl.create 8 in
  List.iteri
    (fun i (t : Ast.table) -> if not (Hashtbl.mem tbl_ids t.t_name) then Hashtbl.add tbl_ids t.t_name i)
    prog.Ast.p_tables;
  let action_ids = Hashtbl.create 8 in
  List.iteri
    (fun i (a : Ast.action) -> if not (Hashtbl.mem action_ids a.a_name) then Hashtbl.add action_ids a.a_name i)
    prog.Ast.p_actions;
  (* pass 1: signatures, so a body compiled in pass 2 can bind any action
     (including ones declared after it) through the mutable [ca_ops] *)
  let cactions =
    Array.of_list
      (List.map
         (fun (a : Ast.action) ->
           { ca_pw = Array.of_list (List.map (fun (p : Ast.field_decl) -> p.f_width) a.a_params);
             ca_ops = [||];
           })
         prog.Ast.p_actions)
  in
  List.iteri
    (fun i (a : Ast.action) ->
      (* first binding wins on duplicate parameter names, like the
         [List.assoc] lookup over the tree engine's pushed bindings *)
      let params =
        List.mapi (fun j (p : Ast.field_decl) -> (p.f_name, (j, p.f_width))) a.a_params
      in
      cactions.(i).ca_ops <-
        compile_stmts cc prog action_ids cactions degrade tbl_ids params a.a_body)
    prog.Ast.p_actions;
  let cp_ingress = compile_stmts cc prog action_ids cactions degrade tbl_ids [] prog.Ast.p_ingress in
  let cp_egress = compile_stmts cc prog action_ids cactions degrade tbl_ids [] prog.Ast.p_egress in
  (* parser *)
  let state_ids = Hashtbl.create 8 in
  List.iteri
    (fun i (s : Ast.parser_state) ->
      if not (Hashtbl.mem state_ids s.ps_name) then Hashtbl.add state_ids s.ps_name i)
    prog.Ast.p_parser;
  let bad_pstates_rev = ref [] and n_bad = ref 0 in
  let target_code (t : Ast.ptarget) =
    match t with
    | Ast.To_accept -> -1
    | Ast.To_reject -> -2
    | Ast.To_state s -> (
        match Hashtbl.find_opt state_ids s with
        | Some i -> i
        | None ->
            let k = !n_bad in
            incr n_bad;
            bad_pstates_rev := s :: !bad_pstates_rev;
            -3 - k)
  in
  let compile_extract hname =
    match header_id lay hname with
    | None ->
        { ex_hid = -1; ex_name = hname; ex_width = 0; ex_slots = [||]; ex_offs = [||]; ex_fws = [||] }
    | Some hid ->
        {
          ex_hid = hid;
          ex_name = hname;
          ex_width = lay.hdr_width.(hid);
          ex_slots = lay.hdr_slots.(hid);
          ex_offs = lay.hdr_offs.(hid);
          ex_fws = lay.hdr_fws.(hid);
        }
  in
  let max_select_keys = ref 0 in
  let compile_transition (tr : Ast.transition) : inst -> int =
    match tr with
    | Ast.Direct t ->
        let code = target_code t in
        fun _ -> code
    | Ast.Select (keys, cases, default) ->
        let ckeys = Array.of_list (List.map (compile_expr cc []) keys) in
        let nk = Array.length ckeys in
        if nk > !max_select_keys then max_select_keys := nk;
        (* cases whose keyset arity differs can never match *)
        let cases = List.filter (fun (c : Ast.select_case) -> List.length c.sc_keysets = nk) cases in
        let ncases = List.length cases in
        let masks = Array.make (ncases * nk) 0L and vals = Array.make (ncases * nk) 0L in
        let targets = Array.make (max 1 ncases) 0 in
        List.iteri
          (fun ci (c : Ast.select_case) ->
            targets.(ci) <- target_code c.sc_target;
            List.iteri
              (fun k (v, m) ->
                match m with
                | None ->
                    masks.((ci * nk) + k) <- -1L;
                    vals.((ci * nk) + k) <- Value.to_int64 v
                | Some m ->
                    let mr = Value.to_int64 m in
                    masks.((ci * nk) + k) <- mr;
                    vals.((ci * nk) + k) <- Int64.logand (Value.to_int64 v) mr)
              c.sc_keysets)
          cases;
        let default_code = target_code default in
        fun st ->
          for i = 0 to nk - 1 do
            st.kscratch.(i) <- (Array.unsafe_get ckeys i).ce st
          done;
          let row = ref 0 and res = ref default_code and stop = ref false in
          while (not !stop) && !row < ncases do
            let base = !row * nk in
            let k = ref 0 in
            while
              !k < nk
              && Int64.logand st.kscratch.(!k) (Array.unsafe_get masks (base + !k))
                 = Array.unsafe_get vals (base + !k)
            do
              incr k
            done;
            if !k = nk then begin
              res := targets.(!row);
              stop := true
            end
            else incr row
          done;
          !res
  in
  let pstates =
    Array.of_list
      (List.mapi
         (fun i (s : Ast.parser_state) ->
           {
             cs_id = i;
             cs_extracts = Array.of_list (List.map compile_extract s.ps_extracts);
             cs_trans = compile_transition s.ps_transition;
           })
         prog.Ast.p_parser)
  in
  (* ipv4 checksum verification (parse-time) and update (deparse-time) *)
  let verify_wanted = parse_hooks.Parse.verify_checksum && prog.Ast.p_verify_ipv4_checksum in
  let ck_verify =
    if not verify_wanted then None
    else
      match header_id lay "ipv4" with
      | None ->
          (* [ipv4_checksum_ok] calls [Env.is_valid], which raises *)
          Some (fun _ -> invalid_arg "Env: undeclared header ipv4")
      | Some hid ->
          let slots = lay.hdr_slots.(hid) and fws = lay.hdr_fws.(hid) in
          Some
            (fun st ->
              if not st.valid.(hid) then true
              else begin
                let b = st.ck_scratch in
                Builder.reset b;
                for i = 0 to Array.length slots - 1 do
                  Builder.add_int64 b ~width:fws.(i) st.fields.(slots.(i))
                done;
                Bitutil.Checksum.ones_complement_sum_bytes (Builder.buffer b)
                  ~bits:(Builder.length b)
                = 0xffff
              end)
  in
  let update_wanted =
    match update_ipv4_checksum with Some u -> u | None -> prog.Ast.p_update_ipv4_checksum
  in
  let ck_update =
    if not update_wanted then None
    else
      match header_id lay "ipv4" with
      | None -> None  (* [Deparse.run] checks [find_header] first *)
      | Some hid ->
          let slots = lay.hdr_slots.(hid) and fws = lay.hdr_fws.(hid) in
          let ck_slot = match field_slot lay "ipv4" "checksum" with Some s -> s | None -> -1 in
          Some
            (fun st ->
              if st.valid.(hid) then begin
                if ck_slot < 0 then invalid_arg "Env: undeclared field ipv4.checksum";
                let b = st.ck_scratch in
                Builder.reset b;
                for i = 0 to Array.length slots - 1 do
                  let v = if slots.(i) = ck_slot then 0L else st.fields.(slots.(i)) in
                  Builder.add_int64 b ~width:fws.(i) v
                done;
                let ck =
                  Bitutil.Checksum.checksum_bytes (Builder.buffer b) ~bits:(Builder.length b)
                in
                (* [Value.of_int ~width:16] then [set_field]'s re-mask *)
                st.fields.(ck_slot) <-
                  Int64.logand (Int64.logand (Int64.of_int ck) 0xffffL) lay.slot_mask.(ck_slot)
              end)
  in
  let emits =
    Array.of_list
      (List.map
         (fun hname ->
           match header_id lay hname with
           | None -> { em_hid = -1; em_name = hname; em_slots = [||]; em_fws = [||] }
           | Some hid ->
               { em_hid = hid; em_name = hname; em_slots = lay.hdr_slots.(hid); em_fws = lay.hdr_fws.(hid) })
         prog.Ast.p_deparser)
  in
  let max_table_keys =
    List.fold_left (fun acc (t : Ast.table) -> max acc (List.length t.t_keys)) 0 prog.Ast.p_tables
  in
  {
    cp_prog = prog;
    lay;
    counter_names = Array.of_list (List.rev cc.cc_counters_rev);
    assert_msgs = Array.of_list (List.rev cc.cc_asserts_rev);
    table_names = Array.of_list (List.map (fun (t : Ast.table) -> t.t_name) prog.Ast.p_tables);
    state_names =
      Array.of_list (List.map (fun (s : Ast.parser_state) -> s.ps_name) prog.Ast.p_parser);
    reg_decls = Array.of_list prog.Ast.p_registers;
    n_tables = List.length prog.Ast.p_tables;
    scratch_keys = max 1 (max max_table_keys !max_select_keys);
    max_visits = max 1 parse_hooks.Parse.max_steps;
    cp_ingress;
    cp_egress;
    pstates;
    bad_pstates = Array.of_list (List.rev !bad_pstates_rev);
    on_reject_continue = parse_hooks.Parse.on_reject = `Continue;
    ck_verify;
    ck_update;
    emits;
    base_always_miss = exec_hooks.Exec.table_always_miss;
  }

(* ------------------------------------------------------------------ *)
(* Accessors over the compiled form                                    *)
(* ------------------------------------------------------------------ *)

let program cp = cp.cp_prog
let n_counters cp = Array.length cp.counter_names
let counter_name cp i = cp.counter_names.(i)
let n_tables cp = cp.n_tables
let table_name cp i = cp.table_names.(i)
let assert_msg cp i = cp.assert_msgs.(i)
let has_registers cp = Array.length cp.reg_decls > 0

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)
(* ------------------------------------------------------------------ *)

let resolve_regs cp (rs : Regstate.t) =
  Array.map (fun (r : Ast.register_decl) -> Regstate.cells rs r.r_name) cp.reg_decls

let instantiate ?(on_count = fun _ -> ()) ?(on_assert = fun _ _ -> ())
    ?(on_table = fun _ _ _ -> ()) ?table_always_miss ?regs ?(track_states = false) cp
    ~runtime:(rt : Runtime.t) =
  let regstore = match regs with Some r -> r | None -> Regstate.create cp.cp_prog in
  {
    cp;
    fields = Array.make (max 1 cp.lay.nslots) 0L;
    meta = Array.make (max 1 (Array.length cp.lay.meta_width)) 0L;
    std = Array.make n_std 0L;
    valid = Array.make (max 1 (Array.length cp.lay.hdr_width)) false;
    cur_args = empty_args;
    in_egress = false;
    pkt = Bitstring.empty;
    pos = 0;
    payload_off = 0;
    p_accepted = true;
    p_error = 0;
    track_states;
    visited = Array.make cp.max_visits 0;
    nvisited = 0;
    kscratch = Array.make cp.scratch_keys 0L;
    tstates =
      Array.init cp.n_tables (fun _ ->
          { ts_gen = -1; ts_m = M_empty; ts_slot = None; ts_cls = None; ts_bounds = [||] });
    i_runtime = rt;
    regs = resolve_regs cp regstore;
    ck_scratch = Builder.create ~capacity_bits:256 ();
    out_buf = Builder.create ~capacity_bits:2048 ();
    always_miss = (match table_always_miss with Some f -> f | None -> cp.base_always_miss);
    on_count;
    on_assert;
    on_table;
  }

let set_regs st rs = st.regs <- resolve_regs st.cp rs

let set_track_states st b = st.track_states <- b

let reset st =
  Array.fill st.fields 0 (Array.length st.fields) 0L;
  Array.fill st.meta 0 (Array.length st.meta) 0L;
  Array.fill st.std 0 n_std 0L;
  Array.fill st.valid 0 (Array.length st.valid) false;
  st.cur_args <- empty_args;
  st.in_egress <- false;
  st.pkt <- Bitstring.empty;
  st.pos <- 0;
  st.payload_off <- 0;
  st.p_accepted <- true;
  st.p_error <- 0;
  st.nvisited <- 0

let set_ingress_port st p =
  st.std.(std_slot Ast.Ingress_port) <- Int64.logand (Int64.of_int p) (mask_of 9)

let dropped st = st.std.(std_slot Ast.Egress_spec) = Int64.of_int Stdmeta.drop_port

let egress_port st = to_int_checked st.std.(std_slot Ast.Egress_spec)

let parse_accepted st = st.p_accepted

let parse_error st = st.p_error

let parse_outcome st =
  let visited = ref [] in
  for i = st.nvisited - 1 downto 0 do
    visited := st.cp.state_names.(st.visited.(i)) :: !visited
  done;
  { Parse.accepted = st.p_accepted; error = st.p_error; states_visited = !visited }

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let do_extract st (ex : cextract) =
  if ex.ex_hid < 0 then invalid_arg (Printf.sprintf "Parse: undeclared header %s" ex.ex_name);
  if Bitstring.length st.pkt - st.pos < ex.ex_width then false
  else begin
    Array.unsafe_set st.valid ex.ex_hid true;
    let pos = st.pos in
    let n = Array.length ex.ex_slots in
    for i = 0 to n - 1 do
      Array.unsafe_set st.fields
        (Array.unsafe_get ex.ex_slots i)
        (Bitstring.extract st.pkt ~off:(pos + Array.unsafe_get ex.ex_offs i)
           ~width:(Array.unsafe_get ex.ex_fws i))
    done;
    st.pos <- pos + ex.ex_width;
    true
  end

let finish_parse st ~accepted ~error =
  st.std.(std_slot Ast.Parser_error) <- Int64.logand (Int64.of_int error) (mask_of 4);
  st.payload_off <- st.pos;
  st.p_accepted <- accepted;
  st.p_error <- error

let reject_parse st error =
  if st.cp.on_reject_continue then finish_parse st ~accepted:true ~error
  else finish_parse st ~accepted:false ~error

let accept_parse st =
  match st.cp.ck_verify with
  | Some ok when not (ok st) -> reject_parse st Stdmeta.error_checksum
  | Some _ | None -> finish_parse st ~accepted:true ~error:Stdmeta.error_none

let run_parser st bits =
  let cp = st.cp in
  st.pkt <- bits;
  st.pos <- 0;
  st.nvisited <- 0;
  st.std.(std_slot Ast.Packet_length) <-
    Int64.logand (Int64.of_int (Bitstring.length bits / 8)) (mask_of 32);
  let states = cp.pstates in
  if Array.length states = 0 then accept_parse st
  else begin
    let rec go idx budget =
      if budget <= 0 then reject_parse st Stdmeta.error_underrun
      else begin
        let cs = Array.unsafe_get states idx in
        if st.track_states then begin
          st.visited.(st.nvisited) <- cs.cs_id;
          st.nvisited <- st.nvisited + 1
        end;
        let exs = cs.cs_extracts in
        let n = Array.length exs in
        let rec ex i = i >= n || (do_extract st (Array.unsafe_get exs i) && ex (i + 1)) in
        if not (ex 0) then reject_parse st Stdmeta.error_underrun
        else begin
          match cs.cs_trans st with
          | -1 -> accept_parse st
          | -2 -> reject_parse st Stdmeta.error_reject
          | target when target >= 0 -> go target (budget - 1)
          | bad ->
              invalid_arg
                (Printf.sprintf "Parse: undeclared state %s" cp.bad_pstates.(-3 - bad))
        end
      end
    in
    go 0 cp.max_visits
  end

let run_ingress st =
  st.in_egress <- false;
  run_ops st.cp.cp_ingress st

let run_egress st =
  st.in_egress <- true;
  run_ops st.cp.cp_egress st

let deparse st =
  let cp = st.cp in
  (match cp.ck_update with Some f -> f st | None -> ());
  let b = st.out_buf in
  Builder.reset b;
  let emits = cp.emits in
  for i = 0 to Array.length emits - 1 do
    let em = Array.unsafe_get emits i in
    (* [Deparse.run] goes through [Env.is_valid], which raises first on an
       undeclared name *)
    if em.em_hid < 0 then invalid_arg (Printf.sprintf "Env: undeclared header %s" em.em_name);
    if Array.unsafe_get st.valid em.em_hid then begin
      let n = Array.length em.em_slots in
      for k = 0 to n - 1 do
        Builder.add_int64 b
          ~width:(Array.unsafe_get em.em_fws k)
          (Array.unsafe_get st.fields (Array.unsafe_get em.em_slots k))
      done
    end
  done;
  Builder.add_sub b st.pkt ~off:st.payload_off ~len:(Bitstring.length st.pkt - st.payload_off);
  Builder.contents b

(* Fault injection against the staged state: mirrors [Device.corrupt],
   which XORs a mask into a field through [Env.get_field]/[set_field]. *)
let corrupt_field st h f mask =
  let lay = st.cp.lay in
  match header_id lay h with
  | None -> invalid_arg (Printf.sprintf "Env: undeclared header %s" h)
  | Some hid -> (
      match field_slot lay h f with
      | None -> invalid_arg (Printf.sprintf "Env: undeclared field %s.%s" h f)
      | Some slot ->
          if st.valid.(hid) then
            st.fields.(slot) <-
              Int64.logand
                (Int64.logxor st.fields.(slot) (Int64.logand mask lay.slot_mask.(slot)))
                lay.slot_mask.(slot))

(* ------------------------------------------------------------------ *)
(* Per-domain compilation cache (spec hooks only)                      *)
(* ------------------------------------------------------------------ *)

(* Keyed on the program's physical identity; safe across domains because
   each domain holds its own cache (no sharing, no locks). Bounded, LRU by
   move-to-front. *)
let spec_cache_max = 32

let spec_cache : (Ast.program * t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let spec_compiled prog =
  let cache = Domain.DLS.get spec_cache in
  match !cache with
  | (p0, cp) :: _ when p0 == prog -> cp
  | entries -> (
      match List.find_opt (fun (p, _) -> p == prog) entries with
      | Some ((_, cp) as hit) ->
          cache := hit :: List.filter (fun (p, _) -> p != prog) entries;
          cp
      | None ->
          let cp = compile prog in
          cache := take spec_cache_max ((prog, cp) :: entries);
          cp)
