(** Deparser: re-serialize the valid headers (in program deparser order)
    followed by the unconsumed payload. *)

val run : ?update_ipv4_checksum:bool -> Env.t -> Bitutil.Bitstring.t
(** [update_ipv4_checksum] overrides the program's
    [p_update_ipv4_checksum] flag — the compiled device passes [false]
    under the checksum quirk. When the update runs, the env's "ipv4"
    checksum field is recomputed in place before emission.
    @raise Invalid_argument if the deparser names an undeclared header. *)

val run_into :
  ?update_ipv4_checksum:bool -> Bitutil.Bitstring.Builder.t -> Env.t -> Bitutil.Bitstring.t
(** As {!run}, but accumulate into a caller-owned reusable
    {!Bitutil.Bitstring.Builder} (reset first) instead of fresh per-call
    writers: a steady-state render loop allocates nothing beyond the
    final contents copy. Observationally identical to {!run}. *)

val header_bits : Env.t -> string -> Bitutil.Bitstring.t
(** Serialize one (valid) header instance from its current field values. *)

val ipv4_checksum_of_env : Env.t -> int
(** The correct checksum value for the current "ipv4" field values
    (checksum field treated as zero). *)
