(* Bucketed match structures replacing the linear entry scan. See the .mli
   for the semantic contract. Hot-path discipline matches entry.ml: the
   lookup path allocates nothing — helpers are top-level recursions over
   ints (no local closures, no refs, no tuples), misses are the sentinel
   -1, and the per-lookup key words live in a preallocated scratch. *)

let enabled_memo =
  lazy
    (match Sys.getenv_opt "NETDEBUG_CLASSIFIER" with
    | Some s when String.lowercase_ascii (String.trim s) = "scan" -> false
    | _ -> true)

let enabled () = Lazy.force enabled_memo

(* ------------------------------------------------------------------ *)
(* Row tables: open-addressing hash over masked key words              *)
(* ------------------------------------------------------------------ *)

(* Slot layout: one flat int array, [nk + 2] words per slot —
   [hdr; head id; masked key words...]. The header doubles as slot state
   (0 = empty, 1 = tombstone) and hash tag (the row hash, tagged so it is
   never 0 or 1): a probe that misses reads only headers, and a probe that
   hits finds the winning id and the key words on the same cache line.
   This is what keeps a million-prefix lookup inside the latency budget —
   the per-probe cost at full-feed scale is DRAM misses, not ALU work, so
   everything a probe needs lives in one place. [chains] (full id list per
   slot, ascending = install order) is control-plane-only: the head is
   mirrored into the slot, lookups never touch the list. [fill] counts
   used + tombstoned slots; growth triggers at load 1/2 (and rebuilds to
   load <= 1/3), keeping unsuccessful probe chains a couple of slots. *)
type rowtbl = {
  mutable cap : int;  (* power of two *)
  mutable slots : int array;  (* cap * (nk + 2) *)
  mutable chains : int list array;  (* entry ids, ascending *)
  mutable live : int;
  mutable fill : int;
}

let rt_create nk =
  { cap = 8; slots = Array.make (8 * (nk + 2)) 0; chains = Array.make 8 []; live = 0; fill = 0 }

(* Multiplicative mixing with an xor-shift finisher: the slot index takes
   the low bits of the hash, which a bare product leaves poorly mixed. *)
let hmix acc x =
  let h = (acc lxor x) * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land max_int

(* Header tag for a row hash: bit 1 forced, so it collides with neither
   empty (0) nor tombstone (1). Dropping the hash's top bits is fine — a
   rare tag collision just costs one full row compare. *)
let hkey h = (h lsl 2) lor 2

let rec hash_masked masks ks j nk acc =
  if j >= nk then acc
  else
    hash_masked masks ks (j + 1) nk
      (hmix acc (Array.unsafe_get ks j land Array.unsafe_get masks j))

let rec hash_vals vals j nk acc =
  if j >= nk then acc else hash_vals vals (j + 1) nk (hmix acc (Array.unsafe_get vals j))

let rec hash_slot slots base j nk acc =
  if j >= nk then acc
  else hash_slot slots base (j + 1) nk (hmix acc (Array.unsafe_get slots (base + 2 + j)))

let rec row_eq_masked slots masks ks base j nk =
  j >= nk
  || Array.unsafe_get slots (base + 2 + j) = Array.unsafe_get ks j land Array.unsafe_get masks j
     && row_eq_masked slots masks ks base (j + 1) nk

let rec row_eq slots base vals j nk =
  j >= nk
  || Array.unsafe_get slots (base + 2 + j) = Array.unsafe_get vals j
     && row_eq slots base vals (j + 1) nk

(* Lookup probe: earliest-installed id of the matching row, or -1. *)
let rec rt_probe slots stride hk masks ks nk capm i =
  let base = i * stride in
  let hdr = Array.unsafe_get slots base in
  if hdr = 0 then -1
  else if hdr = hk && row_eq_masked slots masks ks base 0 nk then
    Array.unsafe_get slots (base + 1)
  else rt_probe slots stride hk masks ks nk capm ((i + 1) land capm)

let rt_find rt masks ks nk =
  let capm = rt.cap - 1 in
  let h = hash_masked masks ks 0 nk 0 in
  rt_probe rt.slots (nk + 2) (hkey h) masks ks nk capm (h land capm)

(* Control-plane side: find the slot holding [vals] (premasked), or the
   slot where it should be inserted (first tombstone on the probe path,
   else the empty that ended it). *)
let rec rt_locate rt hk vals nk capm i tomb =
  let base = i * (nk + 2) in
  let hdr = Array.unsafe_get rt.slots base in
  if hdr = 0 then if tomb >= 0 then (tomb, false) else (i, false)
  else if hdr = hk && row_eq rt.slots base vals 0 nk then (i, true)
  else
    rt_locate rt hk vals nk capm
      ((i + 1) land capm)
      (if tomb < 0 && hdr = 1 then i else tomb)

let rec chain_add id = function
  | [] -> [ id ]
  | x :: _ as l when id < x -> id :: l
  | x :: rest -> x :: chain_add id rest

let rt_occupied hdr = hdr land 2 <> 0

let rec rt_grow rt nk =
  let ncap =
    let target = max 8 (rt.live * 3) in
    let rec pow2 c = if c >= target then c else pow2 (c * 2) in
    pow2 8
  in
  let stride = nk + 2 in
  let oslots = rt.slots and ochains = rt.chains and ocap = rt.cap in
  rt.cap <- ncap;
  rt.slots <- Array.make (ncap * stride) 0;
  rt.chains <- Array.make ncap [];
  rt.fill <- rt.live;
  let capm = ncap - 1 in
  for i = 0 to ocap - 1 do
    let obase = i * stride in
    if rt_occupied oslots.(obase) then begin
      let j = ref (hash_slot oslots obase 0 nk 0 land capm) in
      while rt.slots.(!j * stride) <> 0 do
        j := (!j + 1) land capm
      done;
      Array.blit oslots obase rt.slots (!j * stride) stride;
      rt.chains.(!j) <- ochains.(i)
    end
  done

and rt_insert rt vals nk id =
  if (rt.fill + 1) * 2 > rt.cap then rt_grow rt nk;
  let capm = rt.cap - 1 in
  let h = hash_vals vals 0 nk 0 in
  let i, found = rt_locate rt (hkey h) vals nk capm (h land capm) (-1) in
  let base = i * (nk + 2) in
  if found then begin
    let chain = chain_add id rt.chains.(i) in
    rt.chains.(i) <- chain;
    rt.slots.(base + 1) <- (match chain with x :: _ -> x | [] -> id)
  end
  else begin
    if rt.slots.(base) = 0 then rt.fill <- rt.fill + 1;
    rt.slots.(base) <- hkey h;
    rt.slots.(base + 1) <- id;
    Array.blit vals 0 rt.slots (base + 2) nk;
    rt.chains.(i) <- [ id ];
    rt.live <- rt.live + 1
  end

let rt_remove rt vals nk id =
  let capm = rt.cap - 1 in
  let h = hash_vals vals 0 nk 0 in
  let i, found = rt_locate rt (hkey h) vals nk capm (h land capm) (-1) in
  if found then begin
    let base = i * (nk + 2) in
    let chain = List.filter (fun x -> x <> id) rt.chains.(i) in
    rt.chains.(i) <- chain;
    match chain with
    | [] ->
        rt.slots.(base) <- 1;
        rt.live <- rt.live - 1
    | x :: _ -> rt.slots.(base + 1) <- x
  end

(* ------------------------------------------------------------------ *)
(* Buckets and the classifier                                          *)
(* ------------------------------------------------------------------ *)

type bucket = {
  b_prio : int;
  b_spec : int;
  b_masks : int array;  (* per key position; -1 = full compare *)
  b_tbl : rowtbl;
  mutable b_count : int;
}

type fast = { mutable buckets : bucket array; mutable nb : int }

type t = {
  c_kws : int array;
  nk : int;
  degrade : bool;
  resolve : int -> Entry.t;
  scratch : int array;  (* nk lookup key words *)
  perm_fallback : bool;  (* some key width beyond the native-int fast path *)
  mutable fast : fast option;  (* None = legacy-replica fallback mode *)
  mutable fb : (int * Entry.t) list;  (* fallback store, unordered *)
  mutable fb_asc : (int * Entry.t) list;  (* memo: fb sorted by id *)
  mutable fb_dirty : bool;
  mutable dead : (int * Entry.t) list;  (* unmatchable at these key widths *)
  mutable poison : int;  (* live entries that can raise (fallback only) *)
  mutable nlive : int;
  mutable rebuilds : int;
}

let create ~kws ~degrade ~resolve =
  let nk = Array.length kws in
  let perm = Array.exists (fun w -> w < 1 || w > 62) kws in
  {
    c_kws = Array.copy kws;
    nk;
    degrade;
    resolve;
    scratch = Array.make (max 1 nk) 0;
    perm_fallback = perm;
    fast = (if perm then None else Some { buckets = [||]; nb = 0 });
    fb = [];
    fb_asc = [];
    fb_dirty = false;
    dead = [];
    poison = 0;
    nlive = 0;
    rebuilds = 0;
  }

let kws t = Array.copy t.c_kws

let size t = t.nlive

let rebuilds t = t.rebuilds

let is_fallback t = t.fast = None

(* ---------------- entry classification ---------------- *)

(* How one entry behaves against keys of the declared widths. [Poison]:
   contains an LPM whose evaluation can raise ([prefix_len] > key width at
   an evaluated position) — routed to the fallback replica so the raise is
   preserved. [Dead]: can never match (key arity mismatch, or a value with
   bits above the key width) — invisible to lookups at these widths, but
   kept on a side list so even width-inconsistent probes (which go through
   the replica) still see it. [Row]: premasked words per position plus the
   bucket coordinates. *)
type shape =
  | Poison
  | Dead
  | Row of int array * int array  (* masks, vals; spec = Entry.specificity *)

let kw_mask64 kw = Int64.sub (Int64.shift_left 1L kw) 1L  (* kw <= 62 here *)

(* Mirrors [Entry.keys_match]'s evaluation positions: keys beyond the
   shorter list are never evaluated, hence never raise. *)
let rec can_raise kws nk k = function
  | [] -> false
  | _ when k >= nk -> false
  | Entry.Lpm_v (_, len) :: rest -> (len > 0 && len > kws.(k)) || can_raise kws nk (k + 1) rest
  | (Entry.Exact_v _ | Entry.Ternary_v _) :: rest -> can_raise kws nk (k + 1) rest

let classify t (e : Entry.t) : shape =
  if can_raise t.c_kws t.nk 0 e.Entry.keys then Poison
  else if List.length e.Entry.keys <> t.nk then Dead
  else begin
    let masks = Array.make (max 1 t.nk) 0 and vals = Array.make (max 1 t.nk) 0 in
    let ok = ref true in
    List.iteri
      (fun i mk ->
        if !ok then begin
          let kw = t.c_kws.(i) in
          let range = kw_mask64 kw in
          let full_compare raw =
            (* exact semantics: full 64-bit equality against a key that
               only ever holds [kw] bits *)
            if Int64.unsigned_compare raw range > 0 then ok := false
            else begin
              masks.(i) <- -1;
              vals.(i) <- Int64.to_int raw
            end
          in
          match mk with
          | Entry.Exact_v v -> full_compare (Value.to_int64 v)
          | Entry.Ternary_v (v, _) when t.degrade -> full_compare (Value.to_int64 v)
          | Entry.Ternary_v (v, m) ->
              let m64 = Value.to_int64 m in
              let v64 = Int64.logand (Value.to_int64 v) m64 in
              (* key bits above kw are zero, so mask bits up there can only
                 match a zero value bit; a set value bit is unmatchable *)
              if Int64.unsigned_compare v64 range > 0 then ok := false
              else begin
                masks.(i) <- Int64.to_int (Int64.logand m64 range);
                vals.(i) <- Int64.to_int v64
              end
          | Entry.Lpm_v (v, len) ->
              if len = 0 then begin
                masks.(i) <- 0;
                vals.(i) <- 0
              end
              else begin
                (* len <= kw: Poison was excluded above *)
                let m = ((1 lsl len) - 1) lsl (kw - len) in
                masks.(i) <- m;
                vals.(i) <-
                  Int64.to_int
                    (Int64.logand (Int64.logand (Value.to_int64 v) range) (Int64.of_int m))
              end
        end)
      e.Entry.keys;
    if !ok then Row (masks, vals) else Dead
  end

(* ---------------- fast-structure maintenance ---------------- *)

let masks_eq a b nk =
  let rec go j = j >= nk || (a.(j) = b.(j) && go (j + 1)) in
  go 0

(* Buckets stay sorted by priority desc, specificity desc; order among
   equal (priority, specificity) is irrelevant (lookups take the minimum
   id across the whole level). *)
let find_bucket f prio spec masks nk =
  let rec go i =
    if i >= f.nb then -1
    else
      let b = f.buckets.(i) in
      if b.b_prio = prio && b.b_spec = spec && masks_eq b.b_masks masks nk then i else go (i + 1)
  in
  go 0

let add_bucket f prio spec masks nk =
  let b = { b_prio = prio; b_spec = spec; b_masks = masks; b_tbl = rt_create nk; b_count = 0 } in
  if f.nb = Array.length f.buckets then begin
    let nbuf = Array.make (max 8 (2 * f.nb)) b in
    Array.blit f.buckets 0 nbuf 0 f.nb;
    f.buckets <- nbuf
  end;
  let rec pos i =
    if i >= f.nb then i
    else
      let bi = f.buckets.(i) in
      if bi.b_prio < prio || (bi.b_prio = prio && bi.b_spec < spec) then i else pos (i + 1)
  in
  let p = pos 0 in
  Array.blit f.buckets p f.buckets (p + 1) (f.nb - p);
  f.buckets.(p) <- b;
  f.nb <- f.nb + 1;
  b

let drop_bucket f p =
  Array.blit f.buckets (p + 1) f.buckets p (f.nb - p - 1);
  f.nb <- f.nb - 1

let fast_insert t f id (e : Entry.t) masks vals =
  let spec = Entry.specificity e in
  let b =
    match find_bucket f e.Entry.priority spec masks t.nk with
    | -1 -> add_bucket f e.Entry.priority spec (Array.copy masks) t.nk
    | i -> f.buckets.(i)
  in
  rt_insert b.b_tbl vals t.nk id;
  b.b_count <- b.b_count + 1;
  t.nlive <- t.nlive + 1

let fast_remove t f id (e : Entry.t) masks vals =
  let spec = Entry.specificity e in
  match find_bucket f e.Entry.priority spec masks t.nk with
  | -1 -> ()
  | i ->
      let b = f.buckets.(i) in
      rt_remove b.b_tbl vals t.nk id;
      b.b_count <- b.b_count - 1;
      t.nlive <- t.nlive - 1;
      if b.b_count = 0 then drop_bucket f i

(* ---------------- mode transitions ---------------- *)

let fb_store t id e =
  t.fb <- (id, e) :: t.fb;
  t.fb_dirty <- true;
  t.nlive <- t.nlive + 1

(* Enumerate the fast structure back into an entry list (plus the dead
   side list, which width-inconsistent probes can still match) and switch
   to replica mode. A structural re-derivation: counted in [rebuilds]. *)
let flip_to_fallback t f =
  let acc = ref t.dead in
  for i = 0 to f.nb - 1 do
    let b = f.buckets.(i) in
    let rt = b.b_tbl in
    for s = 0 to rt.cap - 1 do
      if rt_occupied rt.slots.(s * (t.nk + 2)) then
        List.iter (fun id -> acc := (id, t.resolve id) :: !acc) rt.chains.(s)
    done
  done;
  t.fast <- None;
  t.fb <- !acc;
  t.fb_asc <- [];
  t.fb_dirty <- true;
  t.dead <- [];
  t.nlive <- List.length !acc;
  t.poison <- 0;
  t.rebuilds <- t.rebuilds + 1

(* Inverse transition, taken when the last raising entry is removed (never
   when the key widths themselves are out of range). *)
let rebuild_fast t =
  let f = { buckets = [||]; nb = 0 } in
  let items = t.fb in
  t.fast <- Some f;
  t.fb <- [];
  t.fb_asc <- [];
  t.fb_dirty <- false;
  t.dead <- [];
  t.nlive <- 0;
  t.poison <- 0;
  List.iter
    (fun (id, e) ->
      match classify t e with
      | Row (masks, vals) -> fast_insert t f id e masks vals
      | Dead -> t.dead <- (id, e) :: t.dead
      | Poison -> assert false)
    items;
  t.rebuilds <- t.rebuilds + 1

(* ---------------- updates ---------------- *)

let insert t id e =
  match t.fast with
  | Some f -> (
      match classify t e with
      | Row (masks, vals) -> fast_insert t f id e masks vals
      | Dead -> t.dead <- (id, e) :: t.dead
      | Poison ->
          flip_to_fallback t f;
          t.poison <- 1;
          fb_store t id e)
  | None ->
      if t.perm_fallback then fb_store t id e
      else (
        match classify t e with
        | Poison ->
            t.poison <- t.poison + 1;
            fb_store t id e
        | Row _ | Dead -> fb_store t id e)

let remove t id e =
  match t.fast with
  | Some f -> (
      match classify t e with
      | Row (masks, vals) -> fast_remove t f id e masks vals
      | Dead -> t.dead <- List.filter (fun (i, _) -> i <> id) t.dead
      | Poison -> () (* a raising entry can only live in fallback mode *))
  | None ->
      if List.exists (fun (i, _) -> i = id) t.fb then begin
        t.fb <- List.filter (fun (i, _) -> i <> id) t.fb;
        t.fb_dirty <- true;
        t.nlive <- t.nlive - 1;
        if not t.perm_fallback then begin
          (match classify t e with Poison -> t.poison <- t.poison - 1 | Row _ | Dead -> ());
          if t.poison = 0 then rebuild_fast t
        end
      end

let clear t =
  t.fb <- [];
  t.fb_asc <- [];
  t.fb_dirty <- false;
  t.dead <- [];
  t.poison <- 0;
  t.nlive <- 0;
  if not t.perm_fallback then begin
    match t.fast with
    | Some f -> f.nb <- 0
    | None -> t.fast <- Some { buckets = [||]; nb = 0 }
  end

(* ---------------- lookup ---------------- *)

(* Probe one (priority, specificity) level to completion, carrying the
   best (= smallest) matching id; on a hit the level's answer is final. *)
let rec find_level f ks nk i lp ls best =
  if i >= f.nb then best
  else
    let b = Array.unsafe_get f.buckets i in
    if b.b_prio = lp && b.b_spec = ls then begin
      let id = rt_find b.b_tbl b.b_masks ks nk in
      let best = if id >= 0 && (best < 0 || id < best) then id else best in
      find_level f ks nk (i + 1) lp ls best
    end
    else if best >= 0 then best
    else find_from f ks nk i

and find_from f ks nk i =
  if i >= f.nb then -1
  else
    let b = Array.unsafe_get f.buckets i in
    find_level f ks nk i b.b_prio b.b_spec (-1)

let find_fast f ks nk = find_from f ks nk 0

(* The legacy replica: [Entry.select]'s exact scan shape (same evaluation
   order, hence the same raise behaviour), over (id, entry) pairs. *)
let rec fb_improve dte vs best bp bs = function
  | [] -> best
  | (id, (e : Entry.t)) :: rest ->
      if
        Entry.matches ~degrade_ternary_to_exact:dte e vs
        && (e.Entry.priority > bp || (e.Entry.priority = bp && Entry.specificity e > bs))
      then fb_improve dte vs id e.Entry.priority (Entry.specificity e) rest
      else fb_improve dte vs best bp bs rest

let rec fb_first dte vs = function
  | [] -> -1
  | (id, (e : Entry.t)) :: rest ->
      if Entry.matches ~degrade_ternary_to_exact:dte e vs then
        fb_improve dte vs id e.Entry.priority (Entry.specificity e) rest
      else fb_first dte vs rest

let fb_entries t =
  if t.fb_dirty then begin
    t.fb_asc <- List.sort (fun (a, _) (b, _) -> compare a b) t.fb;
    t.fb_dirty <- false
  end;
  t.fb_asc

let find_fb t vs = fb_first t.degrade vs (fb_entries t)

let rec widths_ok kws nk i = function
  | [] -> i = nk
  | v :: rest -> i < nk && Value.width v = Array.unsafe_get kws i && widths_ok kws nk (i + 1) rest

let rec load_values scratch i = function
  | [] -> ()
  | v :: rest ->
      (* width <= 62, so the word fits a native int *)
      Array.unsafe_set scratch i (Int64.to_int (Value.to_int64 v));
      load_values scratch (i + 1) rest

let find_values t vs =
  match t.fast with
  | Some f ->
      if widths_ok t.c_kws t.nk 0 vs then begin
        load_values t.scratch 0 vs;
        find_fast f t.scratch t.nk
      end
      else begin
        (* inconsistent probe widths: only the replica is correct (values
           out of range for the declared widths become matchable) *)
        flip_to_fallback t f;
        find_fb t vs
      end
  | None -> find_fb t vs

let rec load_raw scratch arr i nk =
  if i < nk then begin
    Array.unsafe_set scratch i (Int64.to_int (Array.unsafe_get arr i));
    load_raw scratch arr (i + 1) nk
  end

let find_raw t arr =
  match t.fast with
  | Some f ->
      load_raw t.scratch arr 0 t.nk;
      find_fast f t.scratch t.nk
  | None -> find_fb t (List.init t.nk (fun i -> Value.make ~width:t.c_kws.(i) arr.(i)))
