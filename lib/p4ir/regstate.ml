type t = (string, int * Value.t array) Hashtbl.t
(* name -> (width, cells) *)

let create (program : Ast.program) =
  let t = Hashtbl.create 4 in
  List.iter
    (fun (r : Ast.register_decl) ->
      Hashtbl.add t r.r_name (r.r_width, Array.make r.r_size (Value.zero r.r_width)))
    program.Ast.p_registers;
  t

let slot t name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Regstate: undeclared register %s" name)

let read t name idx =
  let width, cells = slot t name in
  if idx < 0 || idx >= Array.length cells then Value.zero width else cells.(idx)

let write t name idx v =
  let width, cells = slot t name in
  if idx >= 0 && idx < Array.length cells then
    cells.(idx) <- Value.make ~width (Value.to_int64 v)

let reset t =
  Hashtbl.iter (fun _ (width, cells) -> Array.fill cells 0 (Array.length cells) (Value.zero width)) t

let cells = slot

let dump t name =
  let _, cells = slot t name in
  Array.copy cells
