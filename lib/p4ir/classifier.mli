(** Production-scale match structures: the incremental replacement for the
    priority-ordered linear scan in {!Entry.select}.

    A classifier is built for one table key signature (the key widths, in
    key order) and one setting of the [degrade_ternary_to_exact] quirk. It
    groups installed entries into buckets keyed by (priority, specificity,
    per-position mask vector): exact and degraded-ternary keys become
    full-width masks, LPM keys become prefix masks stratified by prefix
    length (so single-key LPM probes one bucket per populated prefix
    length, longest first — Waldvogel-style linear descent), and ternary
    keys one bucket per distinct mask. Buckets are probed in descending
    (priority, specificity) order with early exit; inside a bucket a
    constant-time open-addressing hash over the masked key words finds the
    candidate row, whose chain keeps entry ids ascending so the earliest
    install order wins remaining ties. The first level with any hit is the
    answer — bit-identical to {!Entry.select}'s
    (priority, specificity, install-order) tie-break.

    Updates are incremental: {!insert} and {!remove} patch the bucket
    structure in place, so control-plane churn never rebuilds the table.

    Entries the fast path cannot represent fall back to an exact replica
    of the legacy scan over the live entries (including its raise
    behaviour): entries containing an LPM whose prefix length exceeds the
    key width (which {!Value.matches_prefix} answers by raising), and
    tables whose key widths exceed 62 bits (beyond OCaml's native int).
    The replica preserves full observational equivalence, it is just
    linear again.

    The environment variable [NETDEBUG_CLASSIFIER=scan] disables the
    classifier process-wide and keeps both engines on the legacy scan —
    the differential baseline. *)

type t

val enabled : unit -> bool
(** False when [NETDEBUG_CLASSIFIER=scan]: callers should keep using the
    legacy {!Entry.select} scan. Read once per process. *)

val create : kws:int array -> degrade:bool -> resolve:(int -> Entry.t) -> t
(** A classifier for keys of widths [kws] (in key order), under the
    [degrade] ternary quirk. [resolve] maps an entry id back to its entry;
    it is only consulted when the structure must fall back to the legacy
    replica (ids passed to {!insert} stay resolvable until {!remove}). *)

val kws : t -> int array
(** The key widths the classifier was built for (a copy). *)

val insert : t -> int -> Entry.t -> unit
(** [insert t id e] adds entry [e] under id [id]. Ids must be unique among
    live entries; install-order ties are broken by ascending id, so callers
    allocate ids monotonically in install order. O(1) amortized. *)

val remove : t -> int -> Entry.t -> unit
(** Remove the entry previously inserted under [id] ([e] must be that
    entry; it re-derives the bucket coordinates). Unknown ids are a no-op.
    O(1) amortized. *)

val clear : t -> unit
(** Drop all entries, keeping the allocated capacity. *)

val size : t -> int
(** Live entries stored (entries that can never match any key of the
    declared widths are tracked separately and not counted). *)

val find_values : t -> Value.t list -> int
(** The id of the winning entry for this key list, or -1 on miss.
    Equivalent to [Entry.select] over the live entries in install order —
    including its raise behaviour on pathological LPM entries. Key lists
    whose widths differ from [kws] are answered correctly via the legacy
    replica (the structure flips to fallback mode, a performance — never a
    semantics — event). The fast path does not allocate. *)

val find_raw : t -> int64 array -> int
(** [find_values] over raw key words (each masked to its key width, as the
    staged engine's key scratch holds them); [arr] supplies the first
    [Array.length (kws t)] words. The fast path does not allocate. *)

val rebuilds : t -> int
(** Structural re-derivations since {!create}: transitions between the
    fast structure and the legacy-replica fallback. Never incremented by
    {!insert}/{!remove} on the fast path — the churn scenario asserts this
    stays flat under sustained updates. *)

val is_fallback : t -> bool
(** True when operating as the legacy-replica fallback (for tests). *)
