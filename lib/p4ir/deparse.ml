module Bitstring = Bitutil.Bitstring

let header_bits env hname =
  match Ast.find_header (Env.program env) hname with
  | None -> invalid_arg (Printf.sprintf "Deparse: undeclared header %s" hname)
  | Some hd ->
      let w = Bitstring.Writer.create () in
      List.iter
        (fun (f : Ast.field_decl) ->
          Bitstring.Writer.push_int64 w ~width:f.f_width
            (Value.to_int64 (Env.get_field env hname f.f_name)))
        hd.h_fields;
      Bitstring.Writer.contents w

let ipv4_checksum_of_env env =
  let saved = Env.get_field env "ipv4" "checksum" in
  Env.set_field env "ipv4" "checksum" (Value.zero 16);
  let bits = header_bits env "ipv4" in
  Env.set_field env "ipv4" "checksum" saved;
  Bitutil.Checksum.checksum_bits bits

let run_into ?update_ipv4_checksum b env =
  let program = Env.program env in
  let update =
    Option.value update_ipv4_checksum ~default:program.Ast.p_update_ipv4_checksum
  in
  if update && Ast.find_header program "ipv4" <> None && Env.is_valid env "ipv4" then
    Env.set_field env "ipv4" "checksum" (Value.of_int ~width:16 (ipv4_checksum_of_env env));
  Bitstring.Builder.reset b;
  List.iter
    (fun hname ->
      if Env.is_valid env hname then
        match Ast.find_header program hname with
        | None -> invalid_arg (Printf.sprintf "Deparse: undeclared header %s" hname)
        | Some hd ->
            List.iter
              (fun (f : Ast.field_decl) ->
                Bitstring.Builder.add_int64 b ~width:f.f_width
                  (Value.to_int64 (Env.get_field env hname f.f_name)))
              hd.h_fields)
    program.Ast.p_deparser;
  Bitstring.Builder.add_bits b (Env.payload env);
  Bitstring.Builder.contents b

let run ?update_ipv4_checksum env =
  let program = Env.program env in
  let update =
    Option.value update_ipv4_checksum ~default:program.Ast.p_update_ipv4_checksum
  in
  if update && Ast.find_header program "ipv4" <> None && Env.is_valid env "ipv4" then
    Env.set_field env "ipv4" "checksum" (Value.of_int ~width:16 (ipv4_checksum_of_env env));
  let w = Bitstring.Writer.create () in
  List.iter
    (fun hname ->
      if Env.is_valid env hname then Bitstring.Writer.push_bits w (header_bits env hname))
    program.Ast.p_deparser;
  Bitstring.Writer.push_bits w (Env.payload env);
  Bitstring.Writer.contents w
