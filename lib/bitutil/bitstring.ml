(* Invariant: [data] has exactly [(len+7)/8] bytes and all pad bits in the
   final partial byte are zero, so structural equality on [data] is bit
   equality. *)
type t = { data : string; len : int }

let empty = { data = ""; len = 0 }

let length t = t.len

let byte_length t = (t.len + 7) / 8

let bytes_for_bits n = (n + 7) / 8

let get_bit_raw s i =
  Char.code (String.unsafe_get s (i lsr 3)) land (0x80 lsr (i land 7)) <> 0

let set_bit_raw b i v =
  let byte = Char.code (Bytes.unsafe_get b (i lsr 3)) in
  let mask = 0x80 lsr (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set b (i lsr 3) (Char.unsafe_chr byte)

(* Copy [len] bits from [src] at bit [srcoff] into [dst] at bit [dstoff];
   byte-aligned fast path for the common packet-payload case. *)
let blit_bits src srcoff dst dstoff len =
  if srcoff land 7 = 0 && dstoff land 7 = 0 then begin
    let full = len lsr 3 in
    Bytes.blit_string src (srcoff lsr 3) dst (dstoff lsr 3) full;
    for i = len land lnot 7 to len - 1 do
      set_bit_raw dst (dstoff + i) (get_bit_raw src (srcoff + i))
    done
  end
  else
    for i = 0 to len - 1 do
      set_bit_raw dst (dstoff + i) (get_bit_raw src (srcoff + i))
    done

let of_string s = { data = s; len = String.length s * 8 }

let to_string t =
  if t.len land 7 = 0 then t.data
  else t.data (* invariant: already padded with zeros *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bitstring.of_hex: non-hex character"

let of_hex s =
  let digits = ref [] in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '_' | ':' -> ()
      | c -> digits := hex_val c :: !digits)
    s;
  let digits = Array.of_list (List.rev !digits) in
  let n = Array.length digits in
  if n land 1 <> 0 then invalid_arg "Bitstring.of_hex: odd digit count";
  let b = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set b i (Char.chr ((digits.(2 * i) lsl 4) lor digits.((2 * i) + 1)))
  done;
  of_string (Bytes.unsafe_to_string b)

let to_hex t =
  let buf = Buffer.create (2 * byte_length t) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t.data;
  Buffer.contents buf

let of_int64 ~width v =
  if width < 0 || width > 64 then invalid_arg "Bitstring.of_int64: width";
  if width = 0 then empty
  else begin
    let b = Bytes.make (bytes_for_bits width) '\000' in
    for i = 0 to width - 1 do
      let bit = Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L in
      if bit = 1L then set_bit_raw b i true
    done;
    { data = Bytes.unsafe_to_string b; len = width }
  end

let get_bit t i =
  if i < 0 || i >= t.len then invalid_arg "Bitstring.get_bit";
  get_bit_raw t.data i

(* Byte-at-a-time read: at most 9 iterations for a 64-bit field, vs one
   iteration per bit. This is the hot path of both parser engines. *)
let extract_raw data off width =
  let v = ref 0L and pos = ref off and remaining = ref width in
  while !remaining > 0 do
    let bit_in_byte = !pos land 7 in
    let avail = 8 - bit_in_byte in
    let nbits = if !remaining < avail then !remaining else avail in
    let byte = Char.code (String.unsafe_get data (!pos lsr 3)) in
    let chunk = (byte lsr (avail - nbits)) land ((1 lsl nbits) - 1) in
    v := Int64.logor (Int64.shift_left !v nbits) (Int64.of_int chunk);
    pos := !pos + nbits;
    remaining := !remaining - nbits
  done;
  !v

let extract t ~off ~width =
  if width < 0 || width > 64 then invalid_arg "Bitstring.extract: width";
  if off < 0 || off + width > t.len then invalid_arg "Bitstring.extract: range";
  extract_raw t.data off width

(* Overwrite [width] bits at bit [off] with the low bits of [v], MSB first,
   byte-at-a-time from the LSB end. Every target bit is written (both ones
   and zeros), so stale buffer content cannot leak through. *)
let blit_int64_raw b ~off ~width v =
  let v = ref v and remaining = ref width in
  let pos = ref (off + width) in
  while !remaining > 0 do
    let last = !pos - 1 in
    let bit_in_byte = last land 7 in
    let nbits = if !remaining < bit_in_byte + 1 then !remaining else bit_in_byte + 1 in
    let shift = 7 - bit_in_byte in
    let mask = ((1 lsl nbits) - 1) lsl shift in
    let chunk = Int64.to_int (Int64.logand !v (Int64.of_int ((1 lsl nbits) - 1))) lsl shift in
    let bidx = last lsr 3 in
    let cur = Char.code (Bytes.unsafe_get b bidx) in
    Bytes.unsafe_set b bidx (Char.unsafe_chr ((cur land lnot mask) lor chunk));
    v := Int64.shift_right_logical !v nbits;
    remaining := !remaining - nbits;
    pos := !pos - nbits
  done

let blit_int64 b ~off ~width v =
  if width < 0 || width > 64 then invalid_arg "Bitstring.blit_int64: width";
  if off < 0 || off + width > Bytes.length b * 8 then
    invalid_arg "Bitstring.blit_int64: range";
  blit_int64_raw b ~off ~width v

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then invalid_arg "Bitstring.sub";
  let b = Bytes.make (bytes_for_bits len) '\000' in
  blit_bits t.data off b 0 len;
  { data = Bytes.unsafe_to_string b; len }

let set_int64 t ~off ~width v =
  if width < 0 || width > 64 then invalid_arg "Bitstring.set_int64: width";
  if off < 0 || off + width > t.len then invalid_arg "Bitstring.set_int64: range";
  let b = Bytes.of_string t.data in
  for i = 0 to width - 1 do
    let bit = Int64.logand (Int64.shift_right_logical v (width - 1 - i)) 1L in
    set_bit_raw b (off + i) (bit = 1L)
  done;
  { data = Bytes.unsafe_to_string b; len = t.len }

let append a b =
  if a.len = 0 then b
  else if b.len = 0 then a
  else begin
    let len = a.len + b.len in
    let buf = Bytes.make (bytes_for_bits len) '\000' in
    blit_bits a.data 0 buf 0 a.len;
    blit_bits b.data 0 buf a.len b.len;
    { data = Bytes.unsafe_to_string buf; len }
  end

let concat l =
  let len = List.fold_left (fun acc t -> acc + t.len) 0 l in
  let buf = Bytes.make (bytes_for_bits len) '\000' in
  let off = ref 0 in
  List.iter
    (fun t ->
      blit_bits t.data 0 buf !off t.len;
      off := !off + t.len)
    l;
  { data = Bytes.unsafe_to_string buf; len }

let equal a b = a.len = b.len && String.equal a.data b.data

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else String.compare a.data b.data

let random prng n =
  let b = Bytes.create (bytes_for_bits n) in
  for i = 0 to Bytes.length b - 1 do
    Bytes.set b i (Char.chr (Prng.int prng 256))
  done;
  (* zero the pad bits to restore the canonical-form invariant *)
  let t = { data = Bytes.unsafe_to_string b; len = Bytes.length b * 8 } in
  sub t ~off:0 ~len:n

let pp ppf t = Format.fprintf ppf "0x%s/%d" (to_hex t) t.len

module Writer = struct
  type bits = t

  type t = { mutable buf : Bytes.t; mutable bits : int }

  let create () = { buf = Bytes.make 64 '\000'; bits = 0 }

  let ensure w extra_bits =
    let needed = bytes_for_bits (w.bits + extra_bits) in
    if needed > Bytes.length w.buf then begin
      let cap = ref (Bytes.length w.buf) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let nb = Bytes.make !cap '\000' in
      Bytes.blit w.buf 0 nb 0 (Bytes.length w.buf);
      w.buf <- nb
    end

  let push_int64 w ~width v =
    if width < 0 || width > 64 then invalid_arg "Writer.push_int64: width";
    ensure w width;
    blit_int64_raw w.buf ~off:w.bits ~width v;
    w.bits <- w.bits + width

  let push_bits w (b : bits) =
    ensure w b.len;
    blit_bits b.data 0 w.buf w.bits b.len;
    w.bits <- w.bits + b.len

  let push_string w s =
    ensure w (String.length s * 8);
    blit_bits s 0 w.buf w.bits (String.length s * 8);
    w.bits <- w.bits + (String.length s * 8)

  let length w = w.bits

  let contents w =
    let b = Bytes.make (bytes_for_bits w.bits) '\000' in
    blit_bits (Bytes.unsafe_to_string w.buf) 0 b 0 w.bits;
    { data = Bytes.unsafe_to_string b; len = w.bits }
end

module Builder = struct
  type bits = t

  (* Unlike {!Writer}, the buffer is retained across {!reset}, so a
     steady-state emit loop (the staged deparser) allocates nothing per
     packet except the final {!contents} copy — and even that can be
     skipped by summing over {!buffer} directly. All writes fully
     overwrite their target bits, so stale content from a previous packet
     never leaks; only the pad bits of the final partial byte need
     canonicalizing, which {!contents} does. *)
  type t = { mutable buf : Bytes.t; mutable bits : int }

  let create ?(capacity_bits = 512) () =
    { buf = Bytes.make (max 1 (bytes_for_bits capacity_bits)) '\000'; bits = 0 }

  let reset b = b.bits <- 0

  let length b = b.bits

  let ensure b extra_bits =
    let needed = bytes_for_bits (b.bits + extra_bits) in
    if needed > Bytes.length b.buf then begin
      let cap = ref (Bytes.length b.buf) in
      while !cap < needed do
        cap := !cap * 2
      done;
      let nb = Bytes.make !cap '\000' in
      Bytes.blit b.buf 0 nb 0 (Bytes.length b.buf);
      b.buf <- nb
    end

  let add_int64 b ~width v =
    if width < 0 || width > 64 then invalid_arg "Builder.add_int64: width";
    ensure b width;
    blit_int64_raw b.buf ~off:b.bits ~width v;
    b.bits <- b.bits + width

  let add_bits b (src : bits) =
    ensure b src.len;
    blit_bits src.data 0 b.buf b.bits src.len;
    b.bits <- b.bits + src.len

  let add_sub b (src : bits) ~off ~len =
    if off < 0 || len < 0 || off + len > src.len then invalid_arg "Builder.add_sub";
    ensure b len;
    blit_bits src.data off b.buf b.bits len;
    b.bits <- b.bits + len

  let buffer b = b.buf

  let contents b =
    let nbytes = bytes_for_bits b.bits in
    let out = Bytes.sub b.buf 0 nbytes in
    (* zero the pad bits of the final partial byte: blit-based writes leave
       whatever the previous (longer) packet put there *)
    let pad = (nbytes * 8) - b.bits in
    if pad > 0 then begin
      let last = Char.code (Bytes.get out (nbytes - 1)) in
      Bytes.set out (nbytes - 1) (Char.unsafe_chr (last land (0xff lsl pad) land 0xff))
    end;
    { data = Bytes.unsafe_to_string out; len = b.bits }
end

module Reader = struct
  type bits = t

  type t = { src : bits; mutable pos : int }

  let create src = { src; pos = 0 }

  let pos r = r.pos

  let remaining r = r.src.len - r.pos

  let read r width =
    if width > remaining r then invalid_arg "Reader.read: underrun";
    let v = extract r.src ~off:r.pos ~width in
    r.pos <- r.pos + width;
    v

  let read_bits r len =
    if len > remaining r then invalid_arg "Reader.read_bits: underrun";
    let b = sub r.src ~off:r.pos ~len in
    r.pos <- r.pos + len;
    b

  let skip r n =
    if n > remaining r then invalid_arg "Reader.skip: underrun";
    r.pos <- r.pos + n

  let seek r pos =
    if pos < 0 || pos > r.src.len then invalid_arg "Reader.seek";
    r.pos <- pos

  let rest r = sub r.src ~off:r.pos ~len:(remaining r)
end
