let ones_complement_sum data =
  let n = String.length data in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code data.[!i] lsl 8) lor Char.code data.[!i + 1]);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code data.[n - 1] lsl 8);
  (* fold carries *)
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  !sum

(* Same sum over the first [bits] bits of a reused scratch buffer (e.g. a
   Bitstring.Builder backing buffer), masking the pad bits of the final
   partial byte so stale content is treated as the zero padding that
   [Bitstring.to_string] would have produced. Allocation-free. *)
let ones_complement_sum_bytes data ~bits =
  let n = (bits + 7) / 8 in
  let pad = (n * 8) - bits in
  let byte i =
    let b = Char.code (Bytes.unsafe_get data i) in
    if i = n - 1 && pad > 0 then b land (0xff lsl pad) land 0xff else b
  in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((byte !i lsl 8) lor byte (!i + 1));
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (byte (n - 1) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  !sum

let checksum data = lnot (ones_complement_sum data) land 0xffff

let checksum_bytes data ~bits = lnot (ones_complement_sum_bytes data ~bits) land 0xffff

let checksum_bits b = checksum (Bitstring.to_string b)

let valid data = ones_complement_sum data = 0xffff
