(** Immutable bit strings, MSB-first.

    A bit string is a sequence of bits; bit 0 is the most significant bit of
    the first byte. Packets, header fields and parser extraction all operate
    on this representation. Widths handled by integer accessors are limited
    to 64 bits; wider data is handled via {!sub}/{!append}. *)

type t

val empty : t

val length : t -> int
(** Length in bits. *)

val byte_length : t -> int
(** Number of bytes needed to hold the bits (rounded up). *)

val of_string : string -> t
(** Each byte contributes 8 bits, MSB first. *)

val to_string : t -> string
(** Pads the final partial byte (if any) with zero bits. *)

val of_hex : string -> t
(** [of_hex "0800"] is the 16-bit string 0x0800. Whitespace is ignored.
    @raise Invalid_argument on non-hex characters or odd digit count. *)

val to_hex : t -> string

val of_int64 : width:int -> int64 -> t
(** [of_int64 ~width v] encodes the low [width] bits of [v], MSB first.
    [0 <= width <= 64]. *)

val get_bit : t -> int -> bool

val extract : t -> off:int -> width:int -> int64
(** Read [width] bits starting at bit offset [off] as an unsigned integer.
    [width <= 64]. @raise Invalid_argument when out of range. *)

val sub : t -> off:int -> len:int -> t

val set_int64 : t -> off:int -> width:int -> int64 -> t
(** Functional update of [width] bits at [off]. *)

val blit_int64 : Bytes.t -> off:int -> width:int -> int64 -> unit
(** In-place update of [width] bits at bit offset [off] in a raw byte
    buffer, MSB first — the mutable counterpart of {!set_int64}. Every
    target bit is overwritten. @raise Invalid_argument when out of
    range or [width] is not in [\[0, 64\]]. *)

val append : t -> t -> t

val concat : t list -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val random : Prng.t -> int -> t
(** [random prng n] is a uniformly random [n]-bit string. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering, ["0x.."], with the bit length as suffix. *)

module Writer : sig
  (** Mutable accumulator for building bit strings front-to-back. *)

  type bits = t
  type t

  val create : unit -> t
  val push_int64 : t -> width:int -> int64 -> unit
  val push_bits : t -> bits -> unit
  val push_string : t -> string -> unit
  val length : t -> int
  val contents : t -> bits
end

module Builder : sig
  (** Reusable mutable accumulator for building bit strings front-to-back.

      Unlike {!Writer}, a builder is meant to be kept and {!reset} between
      uses: the backing buffer is retained, so a steady-state emit loop
      (e.g. the staged deparser) performs no per-packet allocation beyond
      the final {!contents} copy. Observationally it agrees with
      {!set_int64}/{!concat} composition (property-tested). *)

  type bits = t
  type t

  val create : ?capacity_bits:int -> unit -> t
  (** [capacity_bits] defaults to 512; the buffer grows by doubling. *)

  val reset : t -> unit
  (** Forget the accumulated bits; the buffer is retained. *)

  val length : t -> int
  (** Bits accumulated since the last {!reset}. *)

  val add_int64 : t -> width:int -> int64 -> unit
  val add_bits : t -> bits -> unit

  val add_sub : t -> bits -> off:int -> len:int -> unit
  (** Append [len] bits of [src] starting at [off] without materializing
      the intermediate {!sub}. *)

  val buffer : t -> Bytes.t
  (** The live backing buffer ({!length} bits valid, pad bits of the final
      partial byte unspecified). For zero-copy consumers such as
      {!Checksum.ones_complement_sum_bytes}; invalidated by further
      writes. *)

  val contents : t -> bits
  (** Snapshot as an immutable bit string (allocates the copy). *)
end

module Reader : sig
  (** Cursor for consuming a bit string front-to-back. *)

  type bits = t
  type t

  val create : bits -> t
  val pos : t -> int
  val remaining : t -> int

  val read : t -> int -> int64
  (** [read r width] consumes [width] bits. @raise Invalid_argument if fewer
      than [width] bits remain. *)

  val read_bits : t -> int -> bits
  val skip : t -> int -> unit

  val seek : t -> int -> unit
  (** Reposition the cursor (used to roll back a failed decode). *)

  val rest : t -> bits
end
