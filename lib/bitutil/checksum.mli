(** Internet checksum (RFC 1071) over byte strings. *)

val ones_complement_sum : string -> int
(** 16-bit one's-complement sum of the data, before final complement.
    Odd-length data is padded with a zero byte. *)

val checksum : string -> int
(** The Internet checksum: complement of {!ones_complement_sum}, in
    [\[0, 0xffff\]]. *)

val ones_complement_sum_bytes : Bytes.t -> bits:int -> int
(** Allocation-free variant over the first [bits] bits of a reused byte
    buffer (e.g. {!Bitstring.Builder.buffer}); pad bits of the final
    partial byte are treated as zero, matching {!Bitstring.to_string}. *)

val checksum_bytes : Bytes.t -> bits:int -> int
(** Complemented form of {!ones_complement_sum_bytes}. *)

val checksum_bits : Bitstring.t -> int
(** Checksum over the byte rendering of a bit string. *)

val valid : string -> bool
(** [valid data] holds when the data (with its embedded checksum field)
    sums to 0xffff, i.e. the checksum verifies. *)
