(** Deterministic coverage-guided differential fuzzing campaigns.

    A campaign seeds a corpus with well-formed traffic, then repeatedly
    picks an input (energy-weighted), mutates it with the
    header-structure-aware mutators and pushes the child through the
    differential {!Oracle}. Children that light up a new coverage edge
    join the corpus and reward their parent; divergences are deduplicated
    by fingerprint, minimized and attributed to toolchain quirks by
    knock-out. Everything is reproducible from the integer seed.

    Campaigns always execute as a fixed number of logical sub-campaigns
    (8 shards) over a round-robin interleaving of the budget, with their
    own PRNG streams (split off the seed in shard order) and their own
    deployed oracle each. Every shard window runs inside one oracle
    batch window ({!Oracle.with_batch}), so the hot loop pays one
    quiesce and zero management-protocol round trips per window instead
    of per execution.

    Two scheduling engines share that hot loop (DESIGN.md §15):

    - {b deterministic} (the library default): shards exchange fresh
      coverage labels, corpus entries and divergence sightings only at
      synchronization barriers, integrated in ascending shard order.
      [jobs] chooses nothing but how many domains run the shards: the
      report is a pure function of (program, quirks, seed, budget) and
      renders byte-identically for every [jobs] value.
    - {b async} ([~deterministic:false], the [netdebug fuzz] CLI
      default): workers own their shards statically and never wait for
      each other; discoveries integrate through lock-free epoch merges
      ({!Par.Epoch}) at window granularity. Wall-clock scales with
      [jobs] (no barrier, no idle domains), while the report becomes
      schedule-dependent in its incidental detail (corpus size, found-at
      indices) — the {e verdict set} (minimized divergence fingerprints)
      is preserved exactly and coverage saturates to the same core edge
      set (its stochastic tail of rare mutation-dependent labels can
      move by a couple of edges, as it does between seeds), which the
      test suite checks cross-mode. On a pure seed-corpus replay (no
      mutation) both engines render byte-identically. *)

type divergence = {
  dv_fingerprint : string;
  dv_kind : string;  (** "verdict", "port" or "payload" *)
  dv_spec : string;
  dv_dev : string;
  dv_input : Bitutil.Bitstring.t;  (** first input that exposed it *)
  dv_repro : Bitutil.Bitstring.t;  (** minimized reproducer *)
  dv_found_at : int;  (** 1-based campaign execution index *)
  dv_quirks : Sdnet.Quirks.quirk list;  (** culpable quirks (knock-out) *)
}

type report = {
  rp_program : string;
  rp_mode : string;  (** "guided" or "blind" *)
  rp_quirks : Sdnet.Quirks.t;
  rp_seed : int;
  rp_budget : int;
  rp_executions : int;  (** campaign-loop executions (== budget) *)
  rp_total_executions : int;  (** including minimization replays *)
  rp_edges : int;  (** distinct coverage-map edges covered *)
  rp_corpus : int;
  rp_divergences : divergence list;  (** in discovery order *)
  rp_jobs : int;  (** worker domains that ran the campaign *)
  rp_deterministic : bool;  (** barrier engine ([true]) or async engine *)
  rp_wall_s : float;  (** host wall-clock of the whole campaign *)
}
(** [rp_jobs], [rp_deterministic] and [rp_wall_s] are machine- and
    schedule-dependent and deliberately excluded from {!render}; see
    {!render_throughput}. *)

val run :
  ?quirks:Sdnet.Quirks.t ->
  ?seed_corpus:Bitutil.Bitstring.t list ->
  ?jobs:int ->
  ?deterministic:bool ->
  budget:int ->
  seed:int ->
  P4ir.Programs.bundle ->
  report
(** Coverage-guided campaign of exactly [budget] oracle executions (plus
    minimization replays, reported separately). [quirks] defaults to the
    shipped toolchain ({!Sdnet.Quirks.default}). [seed_corpus] replaces
    the three built-in well-formed templates as the initial corpus of
    every shard (duplicates dropped, first occurrence wins) — pass
    {!Symexec.Testgen.packets} to start the campaign coverage-complete
    instead of making it rediscover the program's paths by random
    mutation. [jobs] (default 1) is the number of worker domains
    executing the campaign's shards. [deterministic] (default [true])
    selects the barrier engine, whose report is a pure function of
    (seed_corpus, seed, budget) — bit-identical at any [jobs]; pass
    [false] for the barrier-free async engine, which trades that
    byte-identity for wall-clock scaling while preserving the verdict
    set.
    @raise Invalid_argument when [budget < 1] or [seed_corpus] is
    empty. *)

val run_blind :
  ?quirks:Sdnet.Quirks.t ->
  ?jobs:int ->
  budget:int ->
  seed:int ->
  P4ir.Programs.bundle ->
  report
(** Control arm: the same oracle and coverage accounting driven by the
    feedback-free {!Netdebug.Vectors.fuzz} traffic — the baseline the
    guided campaign's edge count is compared against. [jobs] as in
    {!run}. *)

val render : report -> string
(** Deterministic text report (golden-tested; no wall-clock or
    machine-dependent content). *)

val render_throughput : report -> string
(** One wall-clock perf line — ["throughput: <execs> execs in <s> s =
    <execs/s> execs/s (jobs <n>, <engine>)"] — kept out of {!render} so
    report files stay byte-comparable while CI logs still show fuzzing
    throughput. *)

val pp : Format.formatter -> report -> unit
