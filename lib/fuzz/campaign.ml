module Programs = P4ir.Programs
module Ast = P4ir.Ast
module Quirks = Sdnet.Quirks
module Vectors = Netdebug.Vectors
module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng
module Registry = Telemetry.Registry

type divergence = {
  dv_fingerprint : string;
  dv_kind : string;
  dv_spec : string;
  dv_dev : string;
  dv_input : Bitstring.t;  (** the first input that exposed it *)
  dv_repro : Bitstring.t;  (** minimized reproducer *)
  dv_found_at : int;  (** 1-based campaign execution index of first sighting *)
  dv_quirks : Quirks.quirk list;  (** attribution by quirk knock-out *)
}

type report = {
  rp_program : string;
  rp_mode : string;  (** "guided" or "blind" *)
  rp_quirks : Quirks.t;
  rp_seed : int;
  rp_budget : int;
  rp_executions : int;  (** campaign-loop executions (== budget) *)
  rp_total_executions : int;  (** including minimization replays *)
  rp_edges : int;
  rp_corpus : int;
  rp_divergences : divergence list;  (** in discovery order *)
}

(* Well-formed, program-agnostic starting points; everything malformed is
   the mutators' job. Deliberately NOT symbolic-execution witnesses: the
   campaign must discover interesting paths itself, not be handed them. *)
let seeds () =
  [
    Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000001L ());
    Packet.serialize (Packet.tcp_ipv4 ~dst:0xC0A80101L ());
    Packet.serialize (Packet.make [ Packet.Eth (Packet.Eth.make ()) ] ());
  ]

let divergences_of oracle layout table order =
  List.rev_map
    (fun fp ->
      let input, d, found_at = Hashtbl.find table fp in
      let repro = Minimize.minimize oracle layout ~fingerprint:fp input in
      {
        dv_fingerprint = fp;
        dv_kind = Oracle.kind_name d.Oracle.d_kind;
        dv_spec = d.Oracle.d_spec;
        dv_dev = d.Oracle.d_dev;
        dv_input = input;
        dv_repro = repro;
        dv_found_at = found_at;
        dv_quirks = Oracle.attribute oracle repro;
      })
    order

let finish ~mode ~seed ~budget ~execs oracle layout table order corpus_size =
  let divergences = divergences_of oracle layout table order in
  {
    rp_program = (Oracle.bundle oracle).Programs.program.Ast.p_name;
    rp_mode = mode;
    rp_quirks = Oracle.quirks oracle;
    rp_seed = seed;
    rp_budget = budget;
    rp_executions = execs;
    rp_total_executions = Oracle.executions oracle;
    rp_edges = Coverage.edges (Oracle.coverage oracle);
    rp_corpus = corpus_size;
    rp_divergences = divergences;
  }

let record table order execs input (d : Oracle.divergence) =
  if not (Hashtbl.mem table d.Oracle.d_fingerprint) then begin
    Hashtbl.add table d.Oracle.d_fingerprint (input, d, execs);
    order := d.Oracle.d_fingerprint :: !order
  end

let run ?quirks ~budget ~seed bundle =
  if budget < 1 then invalid_arg "Fuzz.Campaign.run: budget must be positive";
  let oracle = Oracle.create ?quirks bundle in
  let layout = Mutate.layout_of bundle in
  let prng = Prng.create seed in
  let corpus = Corpus.create () in
  Registry.gauge (Oracle.metrics oracle) ~help:"inputs in the fuzzing corpus"
    "fuzz/corpus_size" (fun () -> float_of_int (Corpus.size corpus));
  let table = Hashtbl.create 8 in
  let order = ref [] in
  let execs = ref 0 in
  (* seed phase: every seed joins the corpus; seed executions count
     against the budget like any other *)
  List.iter
    (fun s ->
      Corpus.add corpus s;
      if !execs < budget then begin
        incr execs;
        match (Oracle.execute oracle s).Oracle.x_divergence with
        | Some d -> record table order !execs s d
        | None -> ()
      end)
    (seeds ());
  (* mutation loop: energy-weighted parent choice; children that uncover
     a new edge join the corpus and reward their parent *)
  while !execs < budget do
    let parent = Corpus.pick corpus prng in
    let input = Mutate.mutate layout prng (Corpus.bits parent) in
    incr execs;
    let before = Coverage.edges (Oracle.coverage oracle) in
    let x = Oracle.execute oracle input in
    if Coverage.edges (Oracle.coverage oracle) > before then begin
      Corpus.add corpus input;
      Corpus.reward corpus parent
    end;
    match x.Oracle.x_divergence with
    | Some d -> record table order !execs input d
    | None -> ()
  done;
  finish ~mode:"guided" ~seed ~budget ~execs:!execs oracle layout table !order
    (Corpus.size corpus)

(* The blind baseline: the same oracle, coverage accounting and
   post-processing, driven by Vectors.fuzz's feedback-free traffic — the
   control arm for the guided-vs-blind coverage comparison. *)
let run_blind ?quirks ~budget ~seed bundle =
  if budget < 1 then invalid_arg "Fuzz.Campaign.run_blind: budget must be positive";
  let oracle = Oracle.create ?quirks bundle in
  let layout = Mutate.layout_of bundle in
  let table = Hashtbl.create 8 in
  let order = ref [] in
  let execs = ref 0 in
  List.iter
    (fun input ->
      incr execs;
      match (Oracle.execute oracle input).Oracle.x_divergence with
      | Some d -> record table order !execs input d
      | None -> ())
    (Vectors.fuzz ~seed ~count:budget ());
  finish ~mode:"blind" ~seed ~budget ~execs:!execs oracle layout table !order 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Deterministic text: equal campaigns render byte-identically (golden
   tested), so no wall-clock, no machine-dependent data. *)
let render r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "fuzz campaign: %s\n" r.rp_program;
  pf "  mode %s, quirks [%s], seed %d, budget %d\n" r.rp_mode
    (String.concat ", " (List.map Quirks.name r.rp_quirks))
    r.rp_seed r.rp_budget;
  pf "  executions %d (%d with shrinking), coverage %d edges, corpus %d\n"
    r.rp_executions r.rp_total_executions r.rp_edges r.rp_corpus;
  pf "  divergences: %d\n" (List.length r.rp_divergences);
  List.iteri
    (fun i d ->
      pf "  [%d] %s divergence at execution %d\n" (i + 1) d.dv_kind d.dv_found_at;
      pf "      spec %s\n" d.dv_spec;
      pf "      dev  %s\n" d.dv_dev;
      pf "      quirks: %s\n"
        (match d.dv_quirks with
        | [] -> "(unattributed)"
        | qs -> String.concat ", " (List.map Quirks.name qs));
      pf "      repro %d bytes: %s\n"
        (Bitstring.byte_length d.dv_repro)
        (Bitstring.to_hex d.dv_repro))
    r.rp_divergences;
  Buffer.contents b

let pp ppf r = Format.pp_print_string ppf (render r)
