module Programs = P4ir.Programs
module Ast = P4ir.Ast
module Quirks = Sdnet.Quirks
module Vectors = Netdebug.Vectors
module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng
module Registry = Telemetry.Registry
module Merge = Par.Merge
module Epoch = Par.Epoch

type divergence = {
  dv_fingerprint : string;
  dv_kind : string;
  dv_spec : string;
  dv_dev : string;
  dv_input : Bitstring.t;  (** the first input that exposed it *)
  dv_repro : Bitstring.t;  (** minimized reproducer *)
  dv_found_at : int;  (** 1-based campaign execution index of first sighting *)
  dv_quirks : Quirks.quirk list;  (** attribution by quirk knock-out *)
}

type report = {
  rp_program : string;
  rp_mode : string;  (** "guided" or "blind" *)
  rp_quirks : Quirks.t;
  rp_seed : int;
  rp_budget : int;
  rp_executions : int;  (** campaign-loop executions (== budget) *)
  rp_total_executions : int;  (** including minimization replays *)
  rp_edges : int;
  rp_corpus : int;
  rp_divergences : divergence list;  (** in discovery order *)
  (* machine/schedule-dependent facts, deliberately excluded from render:
     the report text stays a pure function of (program, quirks, seed,
     budget) in deterministic mode *)
  rp_jobs : int;
  rp_deterministic : bool;
  rp_wall_s : float;
}

(* Well-formed, program-agnostic starting points; everything malformed is
   the mutators' job. Deliberately NOT symbolic-execution witnesses: the
   campaign must discover interesting paths itself, not be handed them. *)
let seeds () =
  [
    Packet.serialize (Packet.udp_ipv4 ~dst:0x0A000001L ());
    Packet.serialize (Packet.tcp_ipv4 ~dst:0xC0A80101L ());
    Packet.serialize (Packet.make [ Packet.Eth (Packet.Eth.make ()) ] ());
  ]

(* ------------------------------------------------------------------ *)
(* Sharded execution engine                                            *)
(* ------------------------------------------------------------------ *)

(* The campaign always runs as [shards] logical sub-campaigns over a
   round-robin interleaving of the execution budget; [jobs] only sets how
   many domains execute them. Because shards exchange state exclusively
   at round barriers — integrated by the coordinator in ascending shard
   order — the report depends on (seed, budget, quirks) alone, never on
   scheduling: any jobs value renders byte-identically. The constant is
   part of the output format; changing it changes reports. *)
let shards = 8

(* executions a shard runs between synchronization barriers *)
let sync_batch = 64

(* global execution index of a shard's [j]-th (1-based) local execution:
   the interleaving a round-robin scheduler would produce. Injective, and
   onto [1, budget] when the remainder goes to the lowest shard ids. *)
let gindex_of ~shard j = ((j - 1) * shards) + shard + 1

type sighting = {
  sg_gindex : int;
  sg_input : Bitstring.t;
  sg_div : Oracle.divergence;
}

type shard_state = {
  sh_id : int;
  sh_oracle : Oracle.t;
  sh_prng : Prng.t;
  sh_corpus : Corpus.t;
  sh_known : (string, unit) Hashtbl.t;  (* edge labels distributed to this shard *)
  sh_have : (string, unit) Hashtbl.t;  (* hex of pool entries already in sh_corpus *)
  sh_seen : (string, unit) Hashtbl.t;  (* fingerprints already sighted locally *)
  mutable sh_budget : int;  (* local executions still to run *)
  mutable sh_done : int;  (* local executions performed *)
  mutable sh_pending_seeds : Bitstring.t list;
  mutable sh_new_labels : string list;  (* published at the round barrier *)
  mutable sh_new_entries : Bitstring.t list;  (* admitted this round, local order *)
  mutable sh_sightings : sighting list;  (* reverse local discovery order *)
}

(* split the budget: shard i runs budget/shards executions, the first
   (budget mod shards) shards one more — the precondition of gindex_of *)
let shard_budgets budget =
  let q = budget / shards and r = budget mod shards in
  Array.init shards (fun i -> q + if i < r then 1 else 0)

let make_shard ?quirks bundle ~prng ~id ~budget ~templates =
  let oracle = Oracle.create ?quirks bundle in
  let corpus = Corpus.create () in
  Registry.gauge (Oracle.metrics oracle) ~help:"inputs in the fuzzing corpus"
    "fuzz/corpus_size" (fun () -> float_of_int (Corpus.size corpus));
  List.iter (Corpus.add corpus) templates;
  let sh_have = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace sh_have (Bitstring.to_hex s) ()) templates;
  {
    sh_id = id;
    sh_oracle = oracle;
    sh_prng = prng;
    sh_corpus = corpus;
    sh_known = Hashtbl.create 64;
    sh_have;
    sh_seen = Hashtbl.create 8;
    sh_budget = budget;
    sh_done = 0;
    sh_pending_seeds = templates;
    sh_new_labels = [];
    sh_new_entries = [];
    sh_sightings = [];
  }

let sight st input (x : Oracle.exec) =
  match x.Oracle.x_divergence with
  | Some d when not (Hashtbl.mem st.sh_seen d.Oracle.d_fingerprint) ->
      Hashtbl.replace st.sh_seen d.Oracle.d_fingerprint ();
      st.sh_sightings <-
        { sg_gindex = gindex_of ~shard:st.sh_id st.sh_done; sg_input = input; sg_div = d }
        :: st.sh_sightings
  | Some _ | None -> ()

(* round start, inside the worker: absorb what the rest of the campaign
   learned last round. [global_labels] and [pool] are snapshots the
   coordinator froze at the barrier — read-only here. *)
let distribute st ~global_labels ~pool =
  List.iter
    (fun label ->
      if not (Hashtbl.mem st.sh_known label) then begin
        Hashtbl.replace st.sh_known label ();
        ignore (Coverage.note (Oracle.coverage st.sh_oracle) label)
      end)
    global_labels;
  List.iter
    (fun entry ->
      let key = Bitstring.to_hex entry in
      if not (Hashtbl.mem st.sh_have key) then begin
        Hashtbl.replace st.sh_have key ();
        Corpus.add st.sh_corpus entry
      end)
    pool

(* one barrier-to-barrier batch of guided executions, purely local *)
let guided_round layout st =
  let n = min sync_batch st.sh_budget in
  for _ = 1 to n do
    st.sh_done <- st.sh_done + 1;
    st.sh_budget <- st.sh_budget - 1;
    let input, parent =
      match st.sh_pending_seeds with
      | s :: rest ->
          st.sh_pending_seeds <- rest;
          (s, None)
      | [] ->
          let parent = Corpus.pick st.sh_corpus st.sh_prng in
          (Mutate.mutate layout st.sh_prng (Corpus.bits parent), Some parent)
    in
    let before = Coverage.edges (Oracle.coverage st.sh_oracle) in
    let x = Oracle.execute st.sh_oracle input in
    let grew = Coverage.edges (Oracle.coverage st.sh_oracle) > before in
    (match parent with
    | Some p when grew ->
        Corpus.add st.sh_corpus input;
        Corpus.reward st.sh_corpus p;
        let key = Bitstring.to_hex input in
        if not (Hashtbl.mem st.sh_have key) then begin
          Hashtbl.replace st.sh_have key ();
          st.sh_new_entries <- input :: st.sh_new_entries
        end
    | Some _ | None -> ());
    sight st input x
  done;
  (* labels this shard covered first (locally): everything interned that
     was never distributed to it. Sorted by Coverage.labels — a
     deterministic publication order. *)
  st.sh_new_labels <-
    List.filter
      (fun l -> not (Hashtbl.mem st.sh_known l))
      (Coverage.labels (Oracle.coverage st.sh_oracle))

(* phase 2, shared by both modes: sort sightings into the global
   discovery order, keep the first per fingerprint, then minimize and
   attribute each on the oracle of the shard that found it (executions
   and coverage from shrink replays land where the sequential engine put
   them). Shard groups shrink in parallel; results reassemble by gindex. *)
let resolve_divergences pool_ layout states sightings =
  let ordered =
    Merge.dedup_by
      ~key:(fun s -> s.sg_div.Oracle.d_fingerprint)
      (List.sort (fun a b -> compare a.sg_gindex b.sg_gindex) sightings)
  in
  let by_shard = Array.make (Array.length states) [] in
  List.iter
    (fun s ->
      let owner = (s.sg_gindex - 1) mod shards in
      by_shard.(owner) <- s :: by_shard.(owner))
    (List.rev ordered);
  let groups =
    Par.Pool.map_chunks pool_ ~chunk:1
      (fun ~worker:_ i group ->
        let st = states.(i) in
        List.map
          (fun s ->
            let fp = s.sg_div.Oracle.d_fingerprint in
            let repro = Minimize.minimize st.sh_oracle layout ~fingerprint:fp s.sg_input in
            let quirks = Oracle.attribute st.sh_oracle repro in
            (s, repro, quirks))
          group)
      by_shard
  in
  let resolved = Merge.concat groups in
  List.map
    (fun s ->
      let _, repro, quirks =
        List.find (fun (s', _, _) -> s' == s) resolved
      in
      {
        dv_fingerprint = s.sg_div.Oracle.d_fingerprint;
        dv_kind = Oracle.kind_name s.sg_div.Oracle.d_kind;
        dv_spec = s.sg_div.Oracle.d_spec;
        dv_dev = s.sg_div.Oracle.d_dev;
        dv_input = s.sg_input;
        dv_repro = repro;
        dv_found_at = s.sg_gindex;
        dv_quirks = quirks;
      })
    ordered

(* campaign totals after phase 2: executions sum across shard oracles;
   edges are the union of per-shard coverage (shrink replays included,
   exactly like the sequential accounting that counted edges last) *)
let finish ~mode ~seed ~budget ~jobs ~deterministic ~wall states divergences corpus_size =
  let some = states.(0) in
  let union = Hashtbl.create 128 in
  Array.iter
    (fun st ->
      List.iter
        (fun l -> Hashtbl.replace union l ())
        (Coverage.labels (Oracle.coverage st.sh_oracle)))
    states;
  {
    rp_program = (Oracle.bundle some.sh_oracle).Programs.program.Ast.p_name;
    rp_mode = mode;
    rp_quirks = Oracle.quirks some.sh_oracle;
    rp_seed = seed;
    rp_budget = budget;
    rp_executions = Array.fold_left (fun n st -> n + st.sh_done) 0 states;
    rp_total_executions =
      Array.fold_left (fun n st -> n + Oracle.executions st.sh_oracle) 0 states;
    rp_edges = Hashtbl.length union;
    rp_corpus = corpus_size;
    rp_divergences = divergences;
    rp_jobs = jobs;
    rp_deterministic = deterministic;
    rp_wall_s = wall;
  }

(* Shard states for every shard with a non-zero budget slice. PRNG
   streams are split off the root in ascending shard order — explicit
   loops, not Array.init, whose evaluation order is unspecified — and
   zero-budget shards still consume their split so the streams never
   depend on the budget. Their oracles (a full deployment each) are only
   created for shards that will run. *)
let make_states ?quirks bundle ~seed ~budget ~templates =
  let root = Prng.create seed in
  let streams = Array.make shards root in
  for id = 0 to shards - 1 do
    streams.(id) <- Prng.split root
  done;
  let budgets = shard_budgets budget in
  let states = ref [] in
  for id = shards - 1 downto 0 do
    if budgets.(id) > 0 then
      states :=
        make_shard ?quirks bundle ~prng:streams.(id) ~id ~budget:budgets.(id) ~templates
        :: !states
  done;
  Array.of_list !states

(* The deterministic engine: barrier rounds, integrated by the
   coordinator in ascending shard order, so the report is a pure
   function of (program, quirks, seed, budget) at any jobs value. Each
   shard's round runs inside one oracle batch window — the hot loop
   never pays the per-execution management-protocol round trips. *)
let run_rounds_barrier pool_ layout active ~templates =
  (* the shared pool starts as the seed templates, which every shard
     already holds; entries keep their global discovery order *)
  let pool_entries = ref templates in
  let pool_keys = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace pool_keys (Bitstring.to_hex s) ()) !pool_entries;
  let global_labels = ref [] in
  let label_keys = Hashtbl.create 128 in
  while Array.exists (fun st -> st.sh_budget > 0) active do
    let labels_snapshot = List.rev !global_labels in
    let pool_snapshot = !pool_entries in
    ignore
      (Par.Pool.map_chunks pool_ ~chunk:1
         (fun ~worker:_ _ st ->
           distribute st ~global_labels:labels_snapshot ~pool:pool_snapshot;
           if st.sh_budget > 0 then
             Oracle.with_batch st.sh_oracle (fun () -> guided_round layout st))
         active);
    (* barrier: integrate publications in ascending shard order *)
    Array.iter
      (fun st ->
        List.iter
          (fun l ->
            if not (Hashtbl.mem label_keys l) then begin
              Hashtbl.replace label_keys l ();
              global_labels := l :: !global_labels
            end)
          st.sh_new_labels;
        List.iter
          (fun entry ->
            let key = Bitstring.to_hex entry in
            if not (Hashtbl.mem pool_keys key) then begin
              Hashtbl.replace pool_keys key ();
              pool_entries := !pool_entries @ [ entry ]
            end)
          (List.rev st.sh_new_entries);
        st.sh_new_labels <- [];
        st.sh_new_entries <- [])
      active
  done;
  List.length !pool_entries

(* The asynchronous engine: static shard ownership (shard index mod
   jobs), no barrier anywhere in the hot loop. Each worker runs its
   shards' windows back to back; discoveries flow through two lock-free
   {!Par.Epoch} channels — workers publish fresh coverage labels and
   admitted corpus entries after each window and drain everyone else's
   through private per-shard cursors before the next. Slow shards never
   hold fast ones hostage, at the price of a schedule-dependent (but
   order-insensitive: same verdict set) report. *)
let run_rounds_async pool_ layout active ~templates =
  let labels_ch = Epoch.create () in
  let entries_ch = Epoch.create () in
  let jobs = Par.Pool.jobs pool_ in
  Par.Pool.run pool_ (fun w ->
      let mine = ref [] in
      Array.iteri
        (fun i st ->
          if i mod jobs = w then mine := (st, Epoch.cursor (), Epoch.cursor ()) :: !mine)
        active;
      let mine = List.rev !mine in
      let progressed = ref true in
      while !progressed do
        progressed := false;
        List.iter
          (fun (st, lcur, ecur) ->
            if st.sh_budget > 0 then begin
              progressed := true;
              distribute st ~global_labels:(Epoch.drain labels_ch lcur)
                ~pool:(Epoch.drain entries_ch ecur);
              Oracle.with_batch st.sh_oracle (fun () -> guided_round layout st);
              Epoch.publish labels_ch st.sh_new_labels;
              (* publications count as distributed-to-self: the next
                 window's recompute must not publish them again *)
              List.iter (fun l -> Hashtbl.replace st.sh_known l ()) st.sh_new_labels;
              Epoch.publish entries_ch (List.rev st.sh_new_entries);
              st.sh_new_labels <- [];
              st.sh_new_entries <- []
            end)
          mine
      done);
  (* global corpus: the seed templates plus every distinct published
     entry (two shards can admit the same input independently) *)
  let keys = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace keys (Bitstring.to_hex s) ()) templates;
  List.iter (fun e -> Hashtbl.replace keys (Bitstring.to_hex e) ()) (Epoch.all entries_ch);
  Hashtbl.length keys

let run ?quirks ?seed_corpus ?(jobs = 1) ?(deterministic = true) ~budget ~seed bundle =
  if budget < 1 then invalid_arg "Fuzz.Campaign.run: budget must be positive";
  let layout = Mutate.layout_of bundle in
  (* [seed_corpus] swaps the generic templates for caller-supplied seeds
     — typically symbolic-execution witnesses (Symexec.Testgen), which
     start the campaign at full path coverage instead of making it
     rediscover the paths by random mutation *)
  let templates = match seed_corpus with Some c -> c | None -> seeds () in
  if templates = [] then invalid_arg "Fuzz.Campaign.run: seed corpus must be non-empty";
  let templates =
    (* first occurrence wins: the pool and the per-shard corpora assume
       distinct entries *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun t ->
        let k = Bitstring.to_hex t in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      templates
  in
  let t0 = Unix.gettimeofday () in
  let active = make_states ?quirks bundle ~seed ~budget ~templates in
  Par.Pool.with_pool ~jobs (fun pool_ ->
      let corpus_size =
        if deterministic then run_rounds_barrier pool_ layout active ~templates
        else run_rounds_async pool_ layout active ~templates
      in
      let sightings =
        Merge.concat (Array.map (fun st -> List.rev st.sh_sightings) active)
      in
      let divergences = resolve_divergences pool_ layout active sightings in
      finish ~mode:"guided" ~seed ~budget ~jobs ~deterministic
        ~wall:(Unix.gettimeofday () -. t0)
        active divergences corpus_size)

(* The blind baseline: the same oracle, coverage accounting and
   post-processing, driven by Vectors.fuzz's feedback-free traffic — the
   control arm for the guided-vs-blind coverage comparison. Executions
   are state-independent, so the round-robin shard split needs no rounds
   or barriers at all, and any jobs value reproduces the sequential
   report byte for byte. *)
let run_blind ?quirks ?(jobs = 1) ~budget ~seed bundle =
  if budget < 1 then invalid_arg "Fuzz.Campaign.run_blind: budget must be positive";
  let layout = Mutate.layout_of bundle in
  let t0 = Unix.gettimeofday () in
  let active = make_states ?quirks bundle ~seed ~budget ~templates:[] in
  let inputs = Array.of_list (Vectors.fuzz ~seed ~count:budget ()) in
  Par.Pool.with_pool ~jobs (fun pool_ ->
      ignore
        (Par.Pool.map_chunks pool_ ~chunk:1
           (fun ~worker:_ _ st ->
             (* this shard's slice: inputs at positions = sh_id mod shards,
                driven through one batch window per shard *)
             Oracle.with_batch st.sh_oracle @@ fun () ->
             let j = ref 0 in
             Array.iteri
               (fun k input ->
                 if k mod shards = st.sh_id && !j < st.sh_budget then begin
                   incr j;
                   st.sh_done <- st.sh_done + 1;
                   sight st input (Oracle.execute st.sh_oracle input)
                 end)
               inputs)
           active);
      let sightings =
        Merge.concat (Array.map (fun st -> List.rev st.sh_sightings) active)
      in
      let divergences = resolve_divergences pool_ layout active sightings in
      finish ~mode:"blind" ~seed ~budget ~jobs ~deterministic:true
        ~wall:(Unix.gettimeofday () -. t0)
        active divergences 0)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Deterministic text: equal campaigns render byte-identically (golden
   tested), so no wall-clock, no machine-dependent data. *)
let render r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "fuzz campaign: %s\n" r.rp_program;
  pf "  mode %s, quirks [%s], seed %d, budget %d\n" r.rp_mode
    (String.concat ", " (List.map Quirks.name r.rp_quirks))
    r.rp_seed r.rp_budget;
  pf "  executions %d (%d with shrinking), coverage %d edges, corpus %d\n"
    r.rp_executions r.rp_total_executions r.rp_edges r.rp_corpus;
  pf "  divergences: %d\n" (List.length r.rp_divergences);
  List.iteri
    (fun i d ->
      pf "  [%d] %s divergence at execution %d\n" (i + 1) d.dv_kind d.dv_found_at;
      pf "      spec %s\n" d.dv_spec;
      pf "      dev  %s\n" d.dv_dev;
      pf "      quirks: %s\n"
        (match d.dv_quirks with
        | [] -> "(unattributed)"
        | qs -> String.concat ", " (List.map Quirks.name qs));
      pf "      repro %d bytes: %s\n"
        (Bitstring.byte_length d.dv_repro)
        (Bitstring.to_hex d.dv_repro))
    r.rp_divergences;
  Buffer.contents b

(* Wall-clock throughput, deliberately NOT part of {!render}: the report
   text stays golden-comparable while perf is still visible in CI logs. *)
let render_throughput r =
  let execs_s =
    if r.rp_wall_s > 0. then float_of_int r.rp_total_executions /. r.rp_wall_s else 0.
  in
  Printf.sprintf "throughput: %d execs in %.3f s = %.0f execs/s (jobs %d, %s)"
    r.rp_total_executions r.rp_wall_s execs_s r.rp_jobs
    (if r.rp_deterministic then "deterministic" else "async")

let pp ppf r = Format.pp_print_string ppf (render r)
