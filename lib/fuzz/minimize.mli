(** Reproducer minimization.

    Deterministic shrinking of a diverging input: tail truncation in
    halving byte chunks, then zeroing of every header field that does not
    contribute, both gated on the divergence keeping the exact same
    fingerprint. The executions this costs are counted by the oracle. *)

val minimize :
  Oracle.t -> Mutate.layout -> fingerprint:string -> Bitutil.Bitstring.t ->
  Bitutil.Bitstring.t
