(** Header-structure-aware mutators.

    A {!layout} maps a program's expected wire format to (header, field,
    bit offset, width) so mutations can target field boundaries instead of
    blind bit soup, plus a dictionary of the constants the program's
    control flow pivots on (parser select cases, installed entry keys).
    All randomness flows through the supplied {!Bitutil.Prng}. *)

type field = { fl_header : string; fl_field : string; fl_off : int; fl_width : int }

type layout = {
  fields : field array;  (** wire order, bit offsets from packet start *)
  total_bits : int;
  dict : int64 array;  (** sorted, deduplicated *)
}

val layout_of : P4ir.Programs.bundle -> layout
(** Derive the layout from the bundle's parser (extraction order) and
    header declarations; the dictionary also mines the bundle's entries. *)

val mutate : layout -> Bitutil.Prng.t -> Bitutil.Bitstring.t -> Bitutil.Bitstring.t
(** Apply 1-3 stacked mutations drawn from: field bit flip, field boundary
    value (0/1/max/max-1), dictionary value, havoc bit flips, byte-aligned
    truncation, random-tail splice, byte overwrite. *)
