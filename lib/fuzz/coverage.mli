(** Coverage map: an interned bitmap over behavioural edges.

    Edges are parser-state transitions (including the terminal edge into
    accept / reject:<error>), table applies (hit with the chosen action,
    or miss), and per-packet end states (emit port / drop reason). Each
    edge exists twice, prefixed ["spec/"] or ["dev/"], so the map counts
    what each side of the differential oracle has exercised — a packet
    that makes only the quirked device take a new path still counts as
    progress. *)

type t

val create : unit -> t

val note : t -> string -> bool
(** Mark one edge hit; [true] when it was not covered before. *)

val edges : t -> int
(** Distinct edges covered so far. *)

val labels : t -> string list
(** Every interned edge label, sorted (for reports and debugging). *)

val record_spec : t -> P4ir.Interp.observation -> unit
(** Feed one reference-interpreter run: parser transitions, table
    hit/miss + action, and the final forward/drop edge, all under
    ["spec/"]. *)

val attach_device : t -> Target.Device.t -> unit
(** Install {!Target.Device.set_taps} hooks that feed the same edge kinds
    under ["dev/"] for every packet the device processes. *)
