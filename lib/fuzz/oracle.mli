(** Differential oracle: one input through both sides of the validation
    architecture.

    The specification side is {!P4ir.Interp} over the deployed program and
    entries; the device side is the sdnet-compiled pipeline driven through
    the real NetDebug generator/checker loop (stream injection after the
    input interfaces, a mirror rule capturing every emission at the check
    point). Any difference in observable behaviour — forward vs drop,
    egress port, payload bytes — is a divergence with a stable fingerprint
    for deduplication. Both sides feed one {!Coverage} map. *)

type dev_result = Dev_forwarded of int * Bitutil.Bitstring.t | Dev_dropped

type kind =
  | Verdict  (** one side forwarded, the other dropped *)
  | Port  (** both forwarded, different egress ports *)
  | Payload  (** same port, different bytes on the wire *)

type divergence = {
  d_kind : kind;
  d_spec : string;  (** e.g. ["drop:parser:checksum-mismatch"] *)
  d_dev : string;  (** e.g. ["forward:port=1"] *)
  d_fingerprint : string;  (** stable dedup key: kind + both summaries *)
}

type exec = {
  x_spec : P4ir.Interp.result;
  x_dev : dev_result;
  x_divergence : divergence option;
}

type t

val create : ?quirks:Sdnet.Quirks.t -> P4ir.Programs.bundle -> t
(** Deploy the bundle under [quirks] (default {!Sdnet.Quirks.default},
    i.e. the shipped toolchain) with spans off, attach coverage taps and
    the mirror rule. Registers ["fuzz/executions"], ["fuzz/divergences"]
    and the ["fuzz/edges"] gauge on the device's metrics registry. *)

val execute : t -> Bitutil.Bitstring.t -> exec
(** One differential execution. Device registers are reset first so
    executions are independent and reproducers replay faithfully.

    Outside a batch window the device side runs the full management
    protocol (stream configuration, generator start, checker read-back
    through the wire codec) with a quiesce per execution. Inside
    {!with_batch}/{!exec_batch} it takes the batched hot path: the same
    generator-rendered bytes injected directly and judged from the
    device's disposition, one quiesce per window — observably identical
    verdicts, counters and coverage at a fraction of the cost. *)

val with_batch : t -> (unit -> 'a) -> 'a
(** [with_batch t f] opens a batch window around [f]: the mirror rule is
    disarmed, every {!execute} inside takes the direct device path, and
    on exit (exceptional or not) the device is quiesced once, the
    emission ring drained and the mirror rule re-armed. Nested windows
    collapse into the outermost one. *)

val exec_batch : t -> Bitutil.Bitstring.t array -> exec array
(** [exec_batch t inputs] drives the whole vector batch through one
    batch window — one quiesce and telemetry flush for the batch instead
    of one per execution. Results land at their input index.
    [exec_batch t [| x |]] is observably identical to [execute t x]
    (verdicts, counters, coverage). *)

val attribute : t -> Bitutil.Bitstring.t -> Sdnet.Quirks.quirk list
(** Which active quirks this diverging input implicates: quirk [q] is
    culpable iff redeploying without just [q] makes the divergence vanish
    (fresh probe harnesses; the campaign's own state is untouched). *)

val kind_name : kind -> string
val coverage : t -> Coverage.t
val executions : t -> int
val quirks : t -> Sdnet.Quirks.t
val bundle : t -> P4ir.Programs.bundle
val metrics : t -> Telemetry.Registry.t
