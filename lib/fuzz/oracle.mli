(** Differential oracle: one input through both sides of the validation
    architecture.

    The specification side is {!P4ir.Interp} over the deployed program and
    entries; the device side is the sdnet-compiled pipeline driven through
    the real NetDebug generator/checker loop (stream injection after the
    input interfaces, a mirror rule capturing every emission at the check
    point). Any difference in observable behaviour — forward vs drop,
    egress port, payload bytes — is a divergence with a stable fingerprint
    for deduplication. Both sides feed one {!Coverage} map. *)

type dev_result = Dev_forwarded of int * Bitutil.Bitstring.t | Dev_dropped

type kind =
  | Verdict  (** one side forwarded, the other dropped *)
  | Port  (** both forwarded, different egress ports *)
  | Payload  (** same port, different bytes on the wire *)

type divergence = {
  d_kind : kind;
  d_spec : string;  (** e.g. ["drop:parser:checksum-mismatch"] *)
  d_dev : string;  (** e.g. ["forward:port=1"] *)
  d_fingerprint : string;  (** stable dedup key: kind + both summaries *)
}

type exec = {
  x_spec : P4ir.Interp.result;
  x_dev : dev_result;
  x_divergence : divergence option;
}

type t

val create : ?quirks:Sdnet.Quirks.t -> P4ir.Programs.bundle -> t
(** Deploy the bundle under [quirks] (default {!Sdnet.Quirks.default},
    i.e. the shipped toolchain) with spans off, attach coverage taps and
    the mirror rule. Registers ["fuzz/executions"], ["fuzz/divergences"]
    and the ["fuzz/edges"] gauge on the device's metrics registry. *)

val execute : t -> Bitutil.Bitstring.t -> exec
(** One differential execution. Device registers are reset first so
    executions are independent and reproducers replay faithfully. *)

val attribute : t -> Bitutil.Bitstring.t -> Sdnet.Quirks.quirk list
(** Which active quirks this diverging input implicates: quirk [q] is
    culpable iff redeploying without just [q] makes the divergence vanish
    (fresh probe harnesses; the campaign's own state is untouched). *)

val kind_name : kind -> string
val coverage : t -> Coverage.t
val executions : t -> int
val quirks : t -> Sdnet.Quirks.t
val bundle : t -> P4ir.Programs.bundle
val metrics : t -> Telemetry.Registry.t
