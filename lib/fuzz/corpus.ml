module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng

type item = { it_bits : Bitstring.t; mutable it_energy : int }

type t = {
  mutable items : item array;
  mutable n : int;
  mutable total_energy : int;
}

let base_energy = 4
let max_energy = 64

let create () =
  { items = Array.make 16 { it_bits = Bitstring.empty; it_energy = 0 }; n = 0;
    total_energy = 0 }

let size t = t.n

let add t bits =
  if t.n = Array.length t.items then begin
    let bigger = Array.make (2 * t.n) t.items.(0) in
    Array.blit t.items 0 bigger 0 t.n;
    t.items <- bigger
  end;
  t.items.(t.n) <- { it_bits = bits; it_energy = base_energy };
  t.n <- t.n + 1;
  t.total_energy <- t.total_energy + base_energy

let bits item = item.it_bits

(* Energy-weighted pick: inputs that recently produced new coverage carry
   more energy and therefore get mutated more often. Deterministic given
   the PRNG stream. *)
let pick t prng =
  if t.n = 0 then invalid_arg "Fuzz.Corpus.pick: empty corpus";
  let r = Prng.int prng t.total_energy in
  let rec go i acc =
    let acc = acc + t.items.(i).it_energy in
    if r < acc || i = t.n - 1 then t.items.(i) else go (i + 1) acc
  in
  go 0 0

(* Reward the parent of an input that uncovered a new edge. *)
let reward t item =
  let next = min max_energy (2 * item.it_energy) in
  t.total_energy <- t.total_energy + (next - item.it_energy);
  item.it_energy <- next
