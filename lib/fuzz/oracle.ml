module Ast = P4ir.Ast
module Value = P4ir.Value
module Interp = P4ir.Interp
module Regstate = P4ir.Regstate
module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Device = Target.Device
module Harness = Netdebug.Harness
module Controller = Netdebug.Controller
module Wire = Netdebug.Wire
module Bitstring = Bitutil.Bitstring
module Counter = Stats.Counter
module Registry = Telemetry.Registry

type dev_result = Dev_forwarded of int * Bitstring.t | Dev_dropped

type kind = Verdict | Port | Payload

type divergence = {
  d_kind : kind;
  d_spec : string;
  d_dev : string;
  d_fingerprint : string;
}

type exec = {
  x_spec : Interp.result;
  x_dev : dev_result;
  x_divergence : divergence option;
}

type t = {
  harness : Harness.t;
  quirks : Quirks.t;
  bundle : Programs.bundle;
  coverage : Coverage.t;
  mutable executions : int;
  c_execs : Counter.t;
  c_divergences : Counter.t;
}

let ok = function Ok v -> v | Error e -> invalid_arg ("Fuzz.Oracle: " ^ e)

(* A checker rule that fails on every packet reaching the check point:
   each emission lands in the capture ring with its port and bytes, so the
   existing generator/checker loop doubles as the device-side observer. *)
let mirror_rule =
  { Wire.r_name = "fuzz-mirror"; r_filter = None; r_expect = Ast.Const Value.fls }

let create ?(quirks = Quirks.default) bundle =
  let harness = Harness.deploy ~quirks ~span_sampling:0 bundle in
  let coverage = Coverage.create () in
  Coverage.attach_device coverage harness.Harness.device;
  ok (Controller.configure_checker harness.Harness.controller [ mirror_rule ]);
  let metrics = Device.metrics harness.Harness.device in
  Registry.gauge metrics ~help:"distinct coverage-map edges hit" "fuzz/edges" (fun () ->
      float_of_int (Coverage.edges coverage));
  {
    harness;
    quirks;
    bundle;
    coverage;
    executions = 0;
    c_execs =
      Registry.counter metrics ~help:"differential-oracle executions" "fuzz/executions";
    c_divergences =
      Registry.counter metrics ~help:"executions whose device behaviour diverged from the specification"
        "fuzz/divergences";
  }

let coverage t = t.coverage
let executions t = t.executions
let quirks t = t.quirks
let bundle t = t.bundle
let metrics t = Device.metrics t.harness.Harness.device

let kind_name = function Verdict -> "verdict" | Port -> "port" | Payload -> "payload"

let describe_spec = function
  | Interp.Forwarded (p, _) -> "forward:port=" ^ string_of_int p
  | Interp.Dropped r -> "drop:" ^ r

let describe_dev = function
  | Dev_forwarded (p, _) -> "forward:port=" ^ string_of_int p
  | Dev_dropped -> "drop"

let diverge kind spec dev =
  let d_spec = describe_spec spec and d_dev = describe_dev dev in
  Some
    { d_kind = kind; d_spec; d_dev;
      d_fingerprint = kind_name kind ^ "|spec=" ^ d_spec ^ "|dev=" ^ d_dev }

let execute t input =
  t.executions <- t.executions + 1;
  Counter.incr t.c_execs;
  let device = t.harness.Harness.device in
  (* spec side: the reference interpreter over the same installed entries,
     pure single-packet semantics (fresh registers) *)
  let obs =
    Interp.process t.bundle.Programs.program (Device.runtime device)
      ~ingress_port:Harness.generator_port input
  in
  Coverage.record_spec t.coverage obs;
  (* device side: reset persistent state so every execution is independent
     and minimization replays faithfully, then one generator shot observed
     by the mirror rule at the check point *)
  Regstate.reset (Device.registers device);
  let ctl = t.harness.Harness.controller in
  ok (Controller.clear_test_state ctl);
  ok (Controller.configure_generator ctl [ Controller.stream input ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  let dev =
    match summary.Wire.cs_captures with
    | cap :: _ -> Dev_forwarded (cap.Wire.cap_port, cap.Wire.cap_bits)
    | [] -> Dev_dropped
  in
  let divergence =
    match (obs.Interp.result, dev) with
    | Interp.Forwarded (p, out), Dev_forwarded (q, dev_bits) ->
        if p <> q then diverge Port obs.Interp.result dev
        else if not (Bitstring.equal out dev_bits) then
          diverge Payload obs.Interp.result dev
        else None
    | Interp.Dropped _, Dev_forwarded _ | Interp.Forwarded _, Dev_dropped ->
        diverge Verdict obs.Interp.result dev
    | Interp.Dropped _, Dev_dropped -> None  (* drop reasons are not observable *)
  in
  if divergence <> None then Counter.incr t.c_divergences;
  { x_spec = obs.Interp.result; x_dev = dev; x_divergence = divergence }

(* Attribute a reproducer to quirks by delta-debugging the quirk set: a
   quirk is culpable iff removing just it makes the divergence vanish.
   Each probe deploys a fresh harness, so the main campaign's coverage and
   counters are untouched. *)
let attribute t input =
  List.filter
    (fun q ->
      let reduced = List.filter (fun q' -> q' <> q) t.quirks in
      let probe = create ~quirks:reduced t.bundle in
      (execute probe input).x_divergence = None)
    t.quirks
