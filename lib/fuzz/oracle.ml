module Ast = P4ir.Ast
module Value = P4ir.Value
module Interp = P4ir.Interp
module Regstate = P4ir.Regstate
module Programs = P4ir.Programs
module Quirks = Sdnet.Quirks
module Device = Target.Device
module Harness = Netdebug.Harness
module Controller = Netdebug.Controller
module Agent = Netdebug.Agent
module Generator = Netdebug.Generator
module Checker = Netdebug.Checker
module Wire = Netdebug.Wire
module Bitstring = Bitutil.Bitstring
module Counter = Stats.Counter
module Registry = Telemetry.Registry

type dev_result = Dev_forwarded of int * Bitstring.t | Dev_dropped

type kind = Verdict | Port | Payload

type divergence = {
  d_kind : kind;
  d_spec : string;
  d_dev : string;
  d_fingerprint : string;
}

type exec = {
  x_spec : Interp.result;
  x_dev : dev_result;
  x_divergence : divergence option;
}

type t = {
  harness : Harness.t;
  quirks : Quirks.t;
  bundle : Programs.bundle;
  coverage : Coverage.t;
  mutable executions : int;
  mutable in_batch : bool;  (* inside a batch window: direct device path *)
  c_execs : Counter.t;
  c_divergences : Counter.t;
}

let ok = function Ok v -> v | Error e -> invalid_arg ("Fuzz.Oracle: " ^ e)

(* A checker rule that fails on every packet reaching the check point:
   each emission lands in the capture ring with its port and bytes, so the
   existing generator/checker loop doubles as the device-side observer. *)
let mirror_rule =
  { Wire.r_name = "fuzz-mirror"; r_filter = None; r_expect = Ast.Const Value.fls }

let create ?(quirks = Quirks.default) bundle =
  let harness = Harness.deploy ~quirks ~span_sampling:0 bundle in
  let coverage = Coverage.create () in
  Coverage.attach_device coverage harness.Harness.device;
  ok (Controller.configure_checker harness.Harness.controller [ mirror_rule ]);
  let metrics = Device.metrics harness.Harness.device in
  Registry.gauge metrics ~help:"distinct coverage-map edges hit" "fuzz/edges" (fun () ->
      float_of_int (Coverage.edges coverage));
  {
    harness;
    quirks;
    bundle;
    coverage;
    executions = 0;
    in_batch = false;
    c_execs =
      Registry.counter metrics ~help:"differential-oracle executions" "fuzz/executions";
    c_divergences =
      Registry.counter metrics ~help:"executions whose device behaviour diverged from the specification"
        "fuzz/divergences";
  }

let coverage t = t.coverage
let executions t = t.executions
let quirks t = t.quirks
let bundle t = t.bundle
let metrics t = Device.metrics t.harness.Harness.device

let kind_name = function Verdict -> "verdict" | Port -> "port" | Payload -> "payload"

let describe_spec = function
  | Interp.Forwarded (p, _) -> "forward:port=" ^ string_of_int p
  | Interp.Dropped r -> "drop:" ^ r

let describe_dev = function
  | Dev_forwarded (p, _) -> "forward:port=" ^ string_of_int p
  | Dev_dropped -> "drop"

let diverge kind spec dev =
  let d_spec = describe_spec spec and d_dev = describe_dev dev in
  Some
    { d_kind = kind; d_spec; d_dev;
      d_fingerprint = kind_name kind ^ "|spec=" ^ d_spec ^ "|dev=" ^ d_dev }

(* spec side, shared by both device paths: the reference interpreter over
   the same installed entries, pure single-packet semantics (fresh
   registers) *)
let spec_side t input =
  t.executions <- t.executions + 1;
  Counter.incr t.c_execs;
  let obs =
    Interp.process t.bundle.Programs.program
      (Device.runtime t.harness.Harness.device)
      ~ingress_port:Harness.generator_port input
  in
  Coverage.record_spec t.coverage obs;
  obs

let judge t (obs : Interp.observation) dev =
  let divergence =
    match (obs.Interp.result, dev) with
    | Interp.Forwarded (p, out), Dev_forwarded (q, dev_bits) ->
        if p <> q then diverge Port obs.Interp.result dev
        else if not (Bitstring.equal out dev_bits) then
          diverge Payload obs.Interp.result dev
        else None
    | Interp.Dropped _, Dev_forwarded _ | Interp.Forwarded _, Dev_dropped ->
        diverge Verdict obs.Interp.result dev
    | Interp.Dropped _, Dev_dropped -> None  (* drop reasons are not observable *)
  in
  if divergence <> None then Counter.incr t.c_divergences;
  { x_spec = obs.Interp.result; x_dev = dev; x_divergence = divergence }

let execute_rpc t input =
  let obs = spec_side t input in
  let device = t.harness.Harness.device in
  (* device side: reset persistent state so every execution is independent
     and minimization replays faithfully, then one generator shot observed
     by the mirror rule at the check point *)
  Regstate.reset (Device.registers device);
  let ctl = t.harness.Harness.controller in
  ok (Controller.clear_test_state ctl);
  ok (Controller.configure_generator ctl [ Controller.stream input ]);
  ok (Controller.start_generator ctl);
  let summary = ok (Controller.read_checker ctl) in
  let dev =
    match summary.Wire.cs_captures with
    | cap :: _ -> Dev_forwarded (cap.Wire.cap_port, cap.Wire.cap_bits)
    | [] -> Dev_dropped
  in
  judge t obs dev

(* The batched hot path: same spec side, same register reset, same
   generator-rendered wire bytes — but the shot is injected directly and
   judged from the disposition the device hands back, skipping the four
   management-protocol RPCs, the per-emission mirror-rule evaluation and
   the per-execution quiesce ([end_batch] quiesces once for the whole
   window). Verdicts, fuzz counters and coverage are observably identical
   to [execute_rpc] — regression-tested in test_fuzz. *)
let execute_fast t input =
  let obs = spec_side t input in
  let device = t.harness.Harness.device in
  Regstate.reset (Device.registers device);
  let gen = Agent.generator t.harness.Harness.agent in
  let dev =
    match Generator.send_raw gen input with
    | Device.Emitted o -> Dev_forwarded (o.Device.o_port, o.Device.o_bits)
    | Device.Dropped_pipeline _ | Device.Dropped_queue | Device.Lost_in_stage _ ->
        Dev_dropped
  in
  (* keep the emission ring from accumulating across the window *)
  ignore (Device.outputs device);
  judge t obs dev

let execute t input = if t.in_batch then execute_fast t input else execute_rpc t input

let begin_batch t =
  if not t.in_batch then begin
    t.in_batch <- true;
    (* disarm the mirror rule: inside the window every emission is judged
       from the inject disposition directly, so rule evaluation at the
       check point would be pure overhead *)
    Checker.configure (Agent.checker t.harness.Harness.agent) []
  end

let end_batch t =
  if t.in_batch then begin
    t.in_batch <- false;
    let device = t.harness.Harness.device in
    Device.quiesce device;
    ignore (Device.outputs device);
    Checker.configure (Agent.checker t.harness.Harness.agent) [ mirror_rule ]
  end

let with_batch t f =
  if t.in_batch then f ()
  else begin
    begin_batch t;
    Fun.protect ~finally:(fun () -> end_batch t) f
  end

let exec_batch t inputs = with_batch t (fun () -> Array.map (execute t) inputs)

(* Attribute a reproducer to quirks by delta-debugging the quirk set: a
   quirk is culpable iff removing just it makes the divergence vanish.
   Each probe deploys a fresh harness, so the main campaign's coverage and
   counters are untouched. *)
let attribute t input =
  List.filter
    (fun q ->
      let reduced = List.filter (fun q' -> q' <> q) t.quirks in
      let probe = create ~quirks:reduced t.bundle in
      (execute probe input).x_divergence = None)
    t.quirks
