module Ast = P4ir.Ast
module Value = P4ir.Value
module Entry = P4ir.Entry
module Programs = P4ir.Programs
module Bitstring = Bitutil.Bitstring
module Prng = Bitutil.Prng

type field = { fl_header : string; fl_field : string; fl_off : int; fl_width : int }

type layout = {
  fields : field array;  (* wire-order field map, bit offsets from packet start *)
  total_bits : int;
  dict : int64 array;  (* interesting constants mined from the program *)
}

(* Wire order approximated by parser-state declaration order (the start
   state is first and programs list states in extraction order); each
   header contributes its fields back-to-back. Branchy parsers make this
   an approximation — good enough to aim mutations at field boundaries. *)
let layout_of (bundle : Programs.bundle) =
  let program = bundle.Programs.program in
  let seen = Hashtbl.create 8 in
  let headers =
    List.concat_map (fun (st : Ast.parser_state) -> st.Ast.ps_extracts) program.Ast.p_parser
    |> List.filter (fun h ->
           if Hashtbl.mem seen h then false
           else begin
             Hashtbl.add seen h ();
             true
           end)
  in
  let fields = ref [] in
  let off = ref 0 in
  List.iter
    (fun hname ->
      match Ast.find_header program hname with
      | None -> ()
      | Some hd ->
          List.iter
            (fun (f : Ast.field_decl) ->
              fields :=
                { fl_header = hname; fl_field = f.Ast.f_name; fl_off = !off;
                  fl_width = f.Ast.f_width }
                :: !fields;
              off := !off + f.Ast.f_width)
            hd.Ast.h_fields)
    headers;
  (* dictionary: the constants the program's control flow pivots on —
     parser select-case keysets and installed table-entry key values *)
  let dict = ref [] in
  List.iter
    (fun (st : Ast.parser_state) ->
      match st.Ast.ps_transition with
      | Ast.Direct _ -> ()
      | Ast.Select (_, cases, _) ->
          List.iter
            (fun (c : Ast.select_case) ->
              List.iter (fun (v, _) -> dict := Value.to_int64 v :: !dict) c.Ast.sc_keysets)
            cases)
    program.Ast.p_parser;
  List.iter
    (fun ((_ : string), (e : Entry.t)) ->
      List.iter
        (function
          | Entry.Exact_v v | Entry.Lpm_v (v, _) | Entry.Ternary_v (v, _) ->
              dict := Value.to_int64 v :: !dict)
        e.Entry.keys)
    bundle.Programs.entries;
  {
    fields = Array.of_list (List.rev !fields);
    total_bits = !off;
    dict = Array.of_list (List.sort_uniq Int64.compare !dict);
  }

let boundary prng width =
  let maxv = if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L in
  match Prng.int prng 4 with
  | 0 -> 0L
  | 1 -> 1L
  | 2 -> maxv
  | _ -> Int64.sub maxv 1L

(* A field fully contained in the packet, uniformly among candidates
   (scan from a random start so short packets still pick fairly). *)
let pick_field layout prng bits =
  let len = Bitstring.length bits in
  let n = Array.length layout.fields in
  if n = 0 then None
  else begin
    let start = Prng.int prng n in
    let rec go k =
      if k = n then None
      else
        let f = layout.fields.((start + k) mod n) in
        if f.fl_off + f.fl_width <= len then Some f else go (k + 1)
    in
    go 0
  end

let flip_bit bits off =
  let cur = Bitstring.extract bits ~off ~width:1 in
  Bitstring.set_int64 bits ~off ~width:1 (Int64.logxor cur 1L)

let mutate_once layout prng bits =
  let len = Bitstring.length bits in
  match Prng.int prng 7 with
  | 0 -> (
      (* field-boundary bit flip *)
      match pick_field layout prng bits with
      | Some f -> flip_bit bits (f.fl_off + Prng.int prng f.fl_width)
      | None -> bits)
  | 1 -> (
      (* field boundary value: 0, 1, max, max-1 *)
      match pick_field layout prng bits with
      | Some f ->
          Bitstring.set_int64 bits ~off:f.fl_off ~width:f.fl_width (boundary prng f.fl_width)
      | None -> bits)
  | 2 -> (
      (* dictionary value into a field *)
      match pick_field layout prng bits with
      | Some f when Array.length layout.dict > 0 ->
          Bitstring.set_int64 bits ~off:f.fl_off ~width:f.fl_width
            (Prng.choose prng layout.dict)
      | _ -> bits)
  | 3 ->
      (* havoc: a handful of flips anywhere *)
      if len = 0 then bits
      else begin
        let n = 1 + Prng.int prng 8 in
        let b = ref bits in
        for _ = 1 to n do
          b := flip_bit !b (Prng.int prng len)
        done;
        !b
      end
  | 4 ->
      (* truncate at a byte boundary (cuts headers mid-extraction) *)
      if len <= 8 then bits
      else Bitstring.sub bits ~off:0 ~len:(8 * (1 + Prng.int prng ((len / 8) - 1)))
  | 5 ->
      (* splice: extend the tail with random bytes *)
      Bitstring.append bits (Bitstring.random prng (8 * (1 + Prng.int prng 16)))
  | _ ->
      (* random byte overwrite *)
      if len < 8 then bits
      else
        let off = 8 * Prng.int prng (len / 8) in
        Bitstring.set_int64 bits ~off ~width:8 (Prng.bits prng ~width:8)

(* Stack 1-3 mutations: single field tweaks find boundary bugs, stacked
   ones escape local minima. *)
let mutate layout prng bits =
  let rec go n bits = if n = 0 then bits else go (n - 1) (mutate_once layout prng bits) in
  go (1 + Prng.int prng 3) bits
