module Interp = P4ir.Interp
module Parse = P4ir.Parse
module Stdmeta = P4ir.Stdmeta
module Device = Target.Device

(* Edge labels are interned to dense bit indices on first sight; the hit
   bitmap grows as the label space does. The label universe is small (a
   few dozen edges per program) so the strings themselves stay cheap. *)
type t = {
  ids : (string, int) Hashtbl.t;  (* edge label -> bit index *)
  mutable bits : Bytes.t;  (* hit bitmap over interned edges *)
  mutable covered : int;  (* population count of [bits] *)
}

let create () = { ids = Hashtbl.create 256; bits = Bytes.make 64 '\000'; covered = 0 }

let intern t label =
  match Hashtbl.find_opt t.ids label with
  | Some i -> i
  | None ->
      let i = Hashtbl.length t.ids in
      Hashtbl.add t.ids label i;
      i

let ensure t i =
  let need = (i lsr 3) + 1 in
  let have = Bytes.length t.bits in
  if have < need then begin
    let nb = Bytes.make (max need (2 * have)) '\000' in
    Bytes.blit t.bits 0 nb 0 have;
    t.bits <- nb
  end

let note t label =
  let i = intern t label in
  ensure t i;
  let byte = i lsr 3 and mask = 1 lsl (i land 7) in
  let cur = Char.code (Bytes.get t.bits byte) in
  if cur land mask = 0 then begin
    Bytes.set t.bits byte (Char.chr (cur lor mask));
    t.covered <- t.covered + 1;
    true
  end
  else false

let edges t = t.covered

let labels t =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.ids [] |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Edge extraction                                                     *)
(* ------------------------------------------------------------------ *)

let parse_final (o : Parse.outcome) =
  if o.Parse.accepted then "accept" else "reject:" ^ Stdmeta.error_name o.Parse.error

(* One edge per parser-state transition, including the terminal edge into
   accept / reject:<error>. *)
let record_parse t ~pre (o : Parse.outcome) =
  let rec go = function
    | [] -> ()
    | [ last ] -> ignore (note t (pre ^ "p:" ^ last ^ "->" ^ parse_final o))
    | a :: (b :: _ as rest) ->
        ignore (note t (pre ^ "p:" ^ a ^ "->" ^ b));
        go rest
  in
  go o.Parse.states_visited

let record_table t ~pre ~table ~hit ~action =
  ignore (note t (pre ^ "t:" ^ table ^ (if hit then ":hit:" ^ action else ":miss")))

let record_spec t (obs : Interp.observation) =
  record_parse t ~pre:"spec/" obs.Interp.parser;
  List.iter
    (fun (table, hit, action) -> record_table t ~pre:"spec/" ~table ~hit ~action)
    obs.Interp.tables;
  ignore
    (note t
       (match obs.Interp.result with
       | Interp.Forwarded (p, _) -> "spec/end:fwd:" ^ string_of_int p
       | Interp.Dropped r -> "spec/end:drop:" ^ r))

let attach_device t dev =
  Device.set_taps dev
    (Some
       {
         Device.tp_parse = (fun o -> record_parse t ~pre:"dev/" o);
         tp_table =
           (fun ~table ~hit ~action -> record_table t ~pre:"dev/" ~table ~hit ~action);
         tp_disposition =
           (fun d ->
             ignore
               (note t
                  (match d with
                  | Device.Emitted o -> "dev/end:emit:" ^ string_of_int o.Device.o_port
                  | Device.Dropped_pipeline r -> "dev/end:drop:" ^ r
                  | Device.Dropped_queue -> "dev/end:queue-drop"
                  | Device.Lost_in_stage s -> "dev/end:lost:" ^ s)));
       })
