module Bitstring = Bitutil.Bitstring

(* Shrink a diverging input while preserving its divergence fingerprint.
   Two deterministic phases (no randomness, so equal inputs give equal
   reproducers):
     1. tail truncation in halving byte chunks — drops payload and
        trailing headers the divergence never needed;
     2. field canonicalization — zero every layout field whose value is
        irrelevant, leaving only the bits that drive the divergence. *)

let still oracle fingerprint candidate =
  match (Oracle.execute oracle candidate).Oracle.x_divergence with
  | Some d -> String.equal d.Oracle.d_fingerprint fingerprint
  | None -> false

let minimize oracle (layout : Mutate.layout) ~fingerprint input =
  (* every probe is a full oracle execution; run the whole shrink inside
     one batch window so they take the direct device path *)
  Oracle.with_batch oracle @@ fun () ->
  let cur = ref input in
  let len = ref (Bitstring.length input) in
  (* phase 1: tail truncation *)
  let chunk = ref (max 8 (!len / 2 / 8 * 8)) in
  while !chunk >= 8 do
    if !len - !chunk >= 8 then begin
      let cand = Bitstring.sub !cur ~off:0 ~len:(!len - !chunk) in
      if still oracle fingerprint cand then begin
        cur := cand;
        len := !len - !chunk
      end
      else chunk := !chunk / 2
    end
    else chunk := !chunk / 2
  done;
  (* phase 2: field canonicalization *)
  Array.iter
    (fun (f : Mutate.field) ->
      if f.Mutate.fl_off + f.Mutate.fl_width <= !len then begin
        let zeroed = Bitstring.set_int64 !cur ~off:f.Mutate.fl_off ~width:f.Mutate.fl_width 0L in
        if (not (Bitstring.equal zeroed !cur)) && still oracle fingerprint zeroed then
          cur := zeroed
      end)
    layout.Mutate.fields;
  !cur
