(** Fuzzing corpus with energy scheduling.

    Inputs enter with a base energy; when a mutation of an input uncovers
    a new coverage edge, the parent's energy doubles (capped), so
    productive inputs are selected — and mutated — more often. Selection
    is energy-weighted and deterministic given the PRNG stream. *)

type item

type t

val create : unit -> t
val size : t -> int
val add : t -> Bitutil.Bitstring.t -> unit
val bits : item -> Bitutil.Bitstring.t

val pick : t -> Bitutil.Prng.t -> item
(** Energy-weighted choice. @raise Invalid_argument on an empty corpus. *)

val reward : t -> item -> unit
(** Double the item's energy (capped at 16x base). *)
