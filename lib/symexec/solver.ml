module Value = P4ir.Value
module Ast = P4ir.Ast
module Prng = Bitutil.Prng

type model = (int, Value.t) Hashtbl.t

type result = Sat of model | Unsat | Unknown

let model_value m id =
  match Hashtbl.find_opt m id with Some v -> v | None -> Value.zero 1

let model_bindings m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_model name_of ppf m =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf (id, v) -> Format.fprintf ppf "%s=%a" (name_of id) Value.pp v)
    ppf (model_bindings m)

let holds m conj =
  List.for_all
    (fun c ->
      let lookup id =
        match Hashtbl.find_opt m id with
        | Some v -> v
        | None ->
            (* unconstrained variables read as zero of their true width; we
               recover the width from the expression's own var list *)
            let w =
              match List.find_opt (fun (v : Sym.var) -> v.Sym.v_id = id) (Sym.vars c) with
              | Some v -> v.Sym.v_width
              | None -> 1
            in
            Value.zero w
      in
      Value.to_bool (Sym.eval lookup c))
    conj

(* ------------------------------------------------------------------ *)
(* Candidate mining                                                    *)
(* ------------------------------------------------------------------ *)

(* For every variable, gather values likely to matter: constants compared
   against it (directly, under masks, shifts or slices), neighbours of
   those constants, and the extremes. *)
let mine_candidates constraints =
  let candidates : (int, (int64, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let widths : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let add (v : Sym.var) value =
    Hashtbl.replace widths v.Sym.v_id v.Sym.v_width;
    let mask =
      if v.Sym.v_width >= 64 then -1L else Int64.sub (Int64.shift_left 1L v.Sym.v_width) 1L
    in
    let tbl =
      match Hashtbl.find_opt candidates v.Sym.v_id with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 8 in
          Hashtbl.add candidates v.Sym.v_id t;
          t
    in
    Hashtbl.replace tbl (Int64.logand value mask) ()
  in
  let add_with_neighbours v value =
    add v value;
    add v (Int64.add value 1L);
    add v (Int64.sub value 1L)
  in
  (* match [expr ~ const] shapes, attributing candidate values to the
     variable underneath the expression *)
  let rec attribute expr (value : int64) =
    match (expr : Sym.t) with
    | Sym.Var v -> add_with_neighbours v value
    | Sym.Bin (Ast.BAnd, e, Sym.Const m) | Sym.Bin (Ast.BAnd, Sym.Const m, e) ->
        (* (e & m) ~ value: e = value on the masked bits; fill rest with 0
           and with 1s *)
        attribute e value;
        attribute e (Int64.logor value (Int64.lognot (Value.to_int64 m)))
    | Sym.Bin (Ast.Shr, e, Sym.Const s) ->
        (* (e >> s) ~ value: e = value << s (LPM shape) *)
        let s = Value.to_int s in
        if s < 64 then begin
          attribute e (Int64.shift_left value s);
          attribute e (Int64.logor (Int64.shift_left value s) (Int64.sub (Int64.shift_left 1L (min s 63)) 1L))
        end
    | Sym.Bin (Ast.Shl, e, Sym.Const s) ->
        let s = Value.to_int s in
        if s < 64 then attribute e (Int64.shift_right_logical value s)
    | Sym.Bin (Ast.Add, e, Sym.Const c) -> attribute e (Int64.sub value (Value.to_int64 c))
    | Sym.Bin (Ast.Sub, e, Sym.Const c) -> attribute e (Int64.add value (Value.to_int64 c))
    | Sym.Bin (Ast.BXor, e, Sym.Const c) -> attribute e (Int64.logxor value (Value.to_int64 c))
    | Sym.Slice (e, _, lsb) -> attribute e (Int64.shift_left value lsb)
    | Sym.Concat (a, b) ->
        let wb = Sym.width b in
        attribute a (Int64.shift_right_logical value wb);
        attribute b value
    | Sym.Const _ | Sym.Bin _ | Sym.Un _ -> List.iter (fun v -> add_with_neighbours v value) (Sym.vars expr)
  in
  let rec walk (c : Sym.t) =
    match c with
    | Sym.Bin ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), e, Sym.Const v) ->
        attribute e (Value.to_int64 v)
    | Sym.Bin ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), Sym.Const v, e) ->
        attribute e (Value.to_int64 v)
    | Sym.Bin (_, a, b) | Sym.Concat (a, b) ->
        walk a;
        walk b
    | Sym.Un (_, a) | Sym.Slice (a, _, _) -> walk a
    | Sym.Var _ | Sym.Const _ -> ()
  in
  List.iter walk constraints;
  (* ensure every variable of every constraint has a slot plus extremes *)
  List.iter
    (fun c ->
      List.iter
        (fun (v : Sym.var) ->
          add v 0L;
          add v 1L;
          add v (-1L))
        (Sym.vars c))
    constraints;
  (candidates, widths)

(* ------------------------------------------------------------------ *)
(* Cheap UNSAT detection: known-bits propagation                       *)
(* ------------------------------------------------------------------ *)

(* Path conditions routinely contain the same information expressed two
   ways (a select on [dst >> 16] and a table entry matching [dst & mask]):
   branch negation then creates contradictions no amount of search can
   satisfy. We collect per-variable known bits from positive equality
   facts and refute any literal those bits determine to be false. *)

let full_mask w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(* (var, mask, value): the bits of [var] selected by [mask] equal [value].
   Returns None when the expression is not an equality shape we track;
   Some None flags a self-contradictory fact (constraint is UNSAT). *)
let eq_fact e (c : Value.t) =
  let cv = Value.to_int64 c in
  match (e : Sym.t) with
  | Sym.Var v ->
      let m = full_mask v.Sym.v_width in
      if Int64.logand cv (Int64.lognot m) <> 0L then Some None
      else Some (Some (v.Sym.v_id, m, Int64.logand cv m))
  | Sym.Bin (Ast.BAnd, Sym.Var v, Sym.Const m) | Sym.Bin (Ast.BAnd, Sym.Const m, Sym.Var v)
    ->
      let m = Int64.logand (Value.to_int64 m) (full_mask v.Sym.v_width) in
      if Int64.logand cv (Int64.lognot m) <> 0L then Some None
      else Some (Some (v.Sym.v_id, m, Int64.logand cv m))
  | Sym.Bin (Ast.Shr, Sym.Var v, Sym.Const s) ->
      let s = Value.to_int s in
      if s >= 64 then None
      else begin
        let w = v.Sym.v_width in
        let m = Int64.logand (Int64.shift_left (-1L) s) (full_mask w) in
        let shifted = Int64.shift_left cv s in
        if Int64.logand shifted (Int64.lognot m) <> 0L || Int64.shift_right_logical shifted s <> cv
        then Some None
        else Some (Some (v.Sym.v_id, m, Int64.logand shifted m))
      end
  | _ -> None

let rec conjuncts (e : Sym.t) =
  match e with
  | Sym.Bin (Ast.LAnd, a, b) -> conjuncts a @ conjuncts b
  | _ -> [ e ]

(* Merge every positive equality fact into per-variable known bits:
   var id -> (mask of known bits, their values). [None] flags facts that
   contradict each other (the constraint set is UNSAT). *)
let known_bits flat =
  let known : (int, int64 * int64) Hashtbl.t = Hashtbl.create 8 in
  let contradiction = ref false in
  let add_fact (id, m, v) =
    let km, kv = match Hashtbl.find_opt known id with Some x -> x | None -> (0L, 0L) in
    let overlap = Int64.logand km m in
    if Int64.logand kv overlap <> Int64.logand v overlap then contradiction := true
    else Hashtbl.replace known id (Int64.logor km m, Int64.logor kv (Int64.logand v m))
  in
  List.iter
    (fun lit ->
      match lit with
      | Sym.Bin (Ast.Eq, e, Sym.Const c) | Sym.Bin (Ast.Eq, Sym.Const c, e) -> (
          match eq_fact e c with
          | Some (Some fact) -> add_fact fact
          | Some None -> contradiction := true
          | None -> ())
      | _ -> ())
    flat;
  if !contradiction then None else Some known

let quick_unsat constraints =
  let flat = List.concat_map conjuncts constraints in
  (* phase 1: merge positive facts into known bits *)
  match known_bits flat with
  | None -> true
  | Some known -> begin
    (* phase 2: is the truth of an equality shape determined by the known
       bits? *)
    let determined e c =
      match
        match (e, c) with
        | e, c -> eq_fact e c
      with
      | Some (Some (id, m, v)) -> (
          match Hashtbl.find_opt known id with
          | Some (km, kv) when Int64.logand km m = m ->
              Some (Int64.logand kv m = v)
          | Some _ | None -> None)
      | Some None -> Some false
      | None -> None
    in
    let rec definitely_true (lit : Sym.t) =
      match lit with
      | Sym.Bin (Ast.Eq, e, Sym.Const c) | Sym.Bin (Ast.Eq, Sym.Const c, e) ->
          determined e c = Some true
      | Sym.Bin (Ast.LAnd, a, b) -> definitely_true a && definitely_true b
      | _ -> false
    in
    List.exists
      (fun lit ->
        match lit with
        | Sym.Bin (Ast.Eq, e, Sym.Const c) | Sym.Bin (Ast.Eq, Sym.Const c, e) ->
            determined e c = Some false
        | Sym.Un (Ast.LNot, inner) -> definitely_true inner
        | _ -> false)
      flat
  end

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let solve ?(seed = 0x5EED) ?(max_tries = 20000) ?(use_mining = true) constraints =
  let constraints = List.filter (fun c -> c <> Sym.Const Value.tru) constraints in
  if List.exists (fun c -> c = Sym.Const Value.fls) constraints then Unsat
  else if constraints = [] then Sat (Hashtbl.create 1)
  else if quick_unsat constraints then Unsat
  else begin
    let candidates, widths = mine_candidates constraints in
    (* ablation mode: forget the mined values, keep only the extremes *)
    if not use_mining then
      Hashtbl.iter
        (fun id tbl ->
          Hashtbl.reset tbl;
          let w = Hashtbl.find widths id in
          let mask = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L in
          List.iter (fun v -> Hashtbl.replace tbl (Int64.logand v mask) ()) [ 0L; 1L; -1L ])
        candidates;
    (* bit-blasted mask solving: conjunctions of masked equality facts
       about one variable (a select on [dst >> 16] plus an LPM entry on
       [dst & mask]) are solved directly by merging their known bits and
       synthesizing candidates that satisfy every fact at once, instead
       of hoping the Cartesian walk combines the right per-literal
       mines *)
    if use_mining then begin
      match known_bits (List.concat_map conjuncts constraints) with
      | None -> ()
      | Some known ->
          Hashtbl.iter
            (fun id (m, v) ->
              match (Hashtbl.find_opt candidates id, Hashtbl.find_opt widths id) with
              | Some tbl, Some w ->
                  let fm = full_mask w in
                  (* the unknown bits as zeros, and as ones *)
                  Hashtbl.replace tbl (Int64.logand v fm) ();
                  Hashtbl.replace tbl (Int64.logand (Int64.logor v (Int64.lognot m)) fm) ()
              | _, _ -> ())
            known
    end;
    let var_ids = Hashtbl.fold (fun id _ acc -> id :: acc) widths [] |> List.sort compare in
    let cand_arrays =
      List.map
        (fun id ->
          let tbl = Hashtbl.find candidates id in
          let arr = Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> Array.of_list in
          (id, Hashtbl.find widths id, arr))
        var_ids
    in
    let prng = Prng.create seed in
    let model = Hashtbl.create 16 in
    (* Phase 1: when the mined candidate space is small enough, walk the
       whole Cartesian product systematically — deterministic and complete
       over the mined values (conjunctions over several constrained
       variables are found immediately instead of waiting for a lucky
       joint sample). *)
    let product =
      List.fold_left
        (fun acc (_, _, arr) ->
          if acc > max_tries then acc else acc * max 1 (Array.length arr))
        1 cand_arrays
    in
    let enumerate () =
      let vars = Array.of_list cand_arrays in
      let n = Array.length vars in
      let rec assign i =
        if i = n then holds model constraints
        else begin
          let id, w, arr = vars.(i) in
          let rec try_cand j =
            j < Array.length arr
            && begin
                 Hashtbl.replace model id (Value.make ~width:w arr.(j));
                 assign (i + 1) || try_cand (j + 1)
               end
          in
          try_cand 0
        end
      in
      Hashtbl.reset model;
      assign 0
    in
    (* Phase 2: randomized sampling mixing mined candidates with fully
       random values (covers constraints whose solutions are not mined). *)
    let try_once i =
      Hashtbl.reset model;
      List.iter
        (fun (id, w, arr) ->
          let raw =
            if Array.length arr > 0 && (i mod 4 <> 3 || Array.length arr > 16) then
              Prng.choose prng arr
            else Prng.bits prng ~width:w
          in
          Hashtbl.replace model id (Value.make ~width:w raw))
        cand_arrays;
      holds model constraints
    in
    let rec search i =
      if i >= max_tries then Unknown
      else if try_once i then Sat (Hashtbl.copy model)
      else search (i + 1)
    in
    if product <= max_tries && enumerate () then Sat (Hashtbl.copy model) else search 0
  end
