module Ast = P4ir.Ast
module Value = P4ir.Value
module Entry = P4ir.Entry
module Runtime = P4ir.Runtime
module Stdmeta = P4ir.Stdmeta
module Bitstring = Bitutil.Bitstring

type ending = Rejected of int | Dropped of string | Forwarded

type path = {
  p_conds : Sym.t list;
  p_ending : ending;
  p_ingress_port : Sym.var;
  p_extracts : (string * (string * Sym.var) list) list;
  p_fields : (string * string * Sym.t) list;
  p_egress : Sym.t;
  p_tables : (string * string) list;
  p_checksum_assumed_ok : bool;
  p_invalid_reads : (string * string) list;
      (* fields read while their header was invalid (reads as zero) *)
}

type run = {
  paths : path list;
  obligations : (Sym.t list * Sym.t * string) list;
  truncated : bool;
}

(* mutable per-branch state, copied at forks *)
type state = {
  fields : (string * string, Sym.t) Hashtbl.t;
  validity : (string, bool) Hashtbl.t;
  metas : (string, Sym.t) Hashtbl.t;
  stds : (Ast.std_field, Sym.t) Hashtbl.t;
  mutable params : (string * Sym.t) list;
  mutable conds : Sym.t list;  (* newest first *)
  mutable extracts : (string * (string * Sym.var) list) list;  (* newest first *)
  mutable tables : (string * string) list;  (* newest first *)
  mutable checksum_assumed : bool;
  mutable invalid_reads : (string * string) list;
}

let copy_state s =
  {
    fields = Hashtbl.copy s.fields;
    validity = Hashtbl.copy s.validity;
    metas = Hashtbl.copy s.metas;
    stds = Hashtbl.copy s.stds;
    params = s.params;
    conds = s.conds;
    extracts = s.extracts;
    tables = s.tables;
    checksum_assumed = s.checksum_assumed;
    invalid_reads = s.invalid_reads;
  }

exception Too_many_paths

let explore ?(max_paths = 4096) (program : Ast.program) runtime =
  (* fresh variables make cross-exploration sharing impossible, so the
     intern table is scoped to this exploration *)
  Sym.new_session ();
  let paths = ref [] in
  let obligations = ref [] in
  let truncated = ref false in
  let ingress_port_var =
    match Sym.fresh_var ~name:"standard_metadata.ingress_port" ~width:9 with
    | Sym.Var v -> v
    | _ -> assert false
  in

  let is_valid st h = Option.value ~default:false (Hashtbl.find_opt st.validity h) in

  let field_width h f =
    match Ast.find_header program h with
    | Some hd -> (
        match Ast.find_field hd f with
        | Some fd -> fd.Ast.f_width
        | None -> invalid_arg (Printf.sprintf "Sexec: field %s.%s" h f))
    | None -> invalid_arg (Printf.sprintf "Sexec: header %s" h)
  in

  let get_field st h f =
    if not (is_valid st h) then begin
      if not (List.mem (h, f) st.invalid_reads) then
        st.invalid_reads <- (h, f) :: st.invalid_reads;
      Sym.of_int ~width:(field_width h f) 0
    end
    else
      match Hashtbl.find_opt st.fields (h, f) with
      | Some e -> e
      | None -> Sym.of_int ~width:(field_width h f) 0
  in

  let meta_width m =
    match Ast.find_meta program m with
    | Some fd -> fd.Ast.f_width
    | None -> invalid_arg (Printf.sprintf "Sexec: metadata %s" m)
  in

  let get_meta st m =
    match Hashtbl.find_opt st.metas m with
    | Some e -> e
    | None -> Sym.of_int ~width:(meta_width m) 0
  in

  let get_std st sf =
    match Hashtbl.find_opt st.stds sf with
    | Some e -> e
    | None -> Sym.of_int ~width:(Ast.std_width sf) 0
  in

  let rec eval st (e : Ast.expr) : Sym.t =
    match e with
    | Ast.Const v -> Sym.const v
    | Ast.Field (h, f) -> get_field st h f
    | Ast.Meta m -> get_meta st m
    | Ast.Std sf -> get_std st sf
    | Ast.Param p -> (
        match List.assoc_opt p st.params with
        | Some e -> e
        | None -> invalid_arg (Printf.sprintf "Sexec: unbound param %s" p))
    | Ast.Valid h -> if is_valid st h then Sym.const Value.tru else Sym.const Value.fls
    | Ast.Bin (op, a, b) -> Sym.bin op (eval st a) (eval st b)
    | Ast.Un (op, a) -> Sym.un op (eval st a)
    | Ast.Slice (a, msb, lsb) -> Sym.slice (eval st a) ~msb ~lsb
    | Ast.Concat (a, b) -> Sym.concat (eval st a) (eval st b)
  in

  let assign st (lv : Ast.lvalue) e =
    match lv with
    | Ast.LField (h, f) -> if is_valid st h then Hashtbl.replace st.fields (h, f) e
    | Ast.LMeta m -> Hashtbl.replace st.metas m e
    | Ast.LStd sf -> Hashtbl.replace st.stds sf e
  in

  let finish st ending =
    if List.length !paths >= max_paths then begin
      truncated := true;
      raise Too_many_paths
    end;
    let fields =
      List.concat_map
        (fun (hd : Ast.header_decl) ->
          if not (is_valid st hd.Ast.h_name) then []
          else
            List.map
              (fun (fd : Ast.field_decl) ->
                (hd.Ast.h_name, fd.Ast.f_name, get_field st hd.Ast.h_name fd.Ast.f_name))
              hd.Ast.h_fields)
        program.Ast.p_headers
    in
    paths :=
      {
        p_conds = List.rev st.conds;
        p_ending = ending;
        p_ingress_port = ingress_port_var;
        p_extracts = List.rev st.extracts;
        p_fields = fields;
        p_egress = get_std st Ast.Egress_spec;
        p_tables = List.rev st.tables;
        p_checksum_assumed_ok = st.checksum_assumed;
        p_invalid_reads = List.rev st.invalid_reads;
      }
      :: !paths
  in

  let drop_value = Sym.of_int ~width:9 Stdmeta.drop_port in

  let dropped st = Sym.equal (get_std st Ast.Egress_spec) drop_value in

  (* branch on a symbolic boolean; skips statically false branches. The
     parent state is dead once both branches ran, so only the true branch
     copies it — the false branch consumes it in place (callers always
     fork in tail position and never touch [st] afterwards). *)
  let fork st cond on_true on_false =
    match Sym.is_const cond with
    | Some v -> if Value.to_bool v then on_true st else on_false st
    | None ->
        let st_t = copy_state st in
        st_t.conds <- cond :: st_t.conds;
        let neg = Sym.not_ cond in
        on_true st_t;
        st.conds <- neg :: st.conds;
        on_false st
  in

  (* ---------------- controls ---------------- *)

  let entry_match_cond st (tbl : Ast.table) (e : Entry.t) =
    let key_exprs = List.map (fun (k, _) -> eval st k) tbl.Ast.t_keys in
    List.fold_left2
      (fun acc key (mk : Entry.mkey) ->
        let w = Sym.width key in
        let cond =
          match mk with
          | Entry.Exact_v v -> Sym.bin Ast.Eq key (Sym.const v)
          | Entry.Lpm_v (v, len) ->
              if len = 0 then Sym.const Value.tru
              else
                Sym.bin Ast.Eq
                  (Sym.bin Ast.Shr key (Sym.of_int ~width:8 (w - len)))
                  (Sym.const (Value.shift_right v (w - len)))
          | Entry.Ternary_v (v, m) ->
              Sym.bin Ast.Eq
                (Sym.bin Ast.BAnd key (Sym.const m))
                (Sym.const (Value.logand v m))
        in
        Sym.bin Ast.LAnd acc cond)
      (Sym.const Value.tru) key_exprs e.Entry.keys
  in

  let rec run_stmts st (stmts : Ast.stmt list) (k : state -> unit) =
    match stmts with
    | [] -> k st
    | s :: rest -> run_stmt st s (fun st -> run_stmts st rest k)

  and run_stmt st (s : Ast.stmt) (k : state -> unit) =
    match s with
    | Ast.Nop -> k st
    | Ast.Assign (lv, e) ->
        assign st lv (eval st e);
        k st
    | Ast.SetValid h ->
        Hashtbl.replace st.validity h true;
        k st
    | Ast.SetInvalid h ->
        Hashtbl.replace st.validity h false;
        List.iter
          (fun (hd : Ast.header_decl) ->
            if String.equal hd.Ast.h_name h then
              List.iter
                (fun (fd : Ast.field_decl) -> Hashtbl.remove st.fields (h, fd.Ast.f_name))
                hd.Ast.h_fields)
          program.Ast.p_headers;
        k st
    | Ast.MarkToDrop ->
        Hashtbl.replace st.stds Ast.Egress_spec drop_value;
        k st
    | Ast.Count _ -> k st
    | Ast.Assert (cond, msg) ->
        obligations := (List.rev st.conds, eval st cond, msg) :: !obligations;
        k st
    | Ast.RegRead (lv, reg, _) ->
        (* stateful memory is havocked: its content depends on packet
           history, which single-packet verification does not model *)
        (match Ast.find_register program reg with
        | Some r ->
            assign st lv (Sym.fresh_var ~name:("reg:" ^ reg) ~width:r.Ast.r_width)
        | None -> invalid_arg (Printf.sprintf "Sexec: register %s" reg));
        k st
    | Ast.RegWrite (_, _, _) -> k st
    | Ast.If (cond, then_, else_) ->
        fork st (eval st cond)
          (fun st -> run_stmts st then_ k)
          (fun st -> run_stmts st else_ k)
    | Ast.Apply name -> apply_table st name k

  and apply_table st name k =
    match Ast.find_table program name with
    | None -> invalid_arg (Printf.sprintf "Sexec: table %s" name)
    | Some tbl ->
        let entries =
          Runtime.entries runtime name
          |> List.stable_sort (fun a b ->
                 let c = compare b.Entry.priority a.Entry.priority in
                 if c <> 0 then c else compare (Entry.specificity b) (Entry.specificity a))
        in
        let run_action st (aname : string) args k =
          match Ast.find_action program aname with
          | None -> invalid_arg (Printf.sprintf "Sexec: action %s" aname)
          | Some action ->
              let saved = st.params in
              st.params <-
                List.map2
                  (fun (p : Ast.field_decl) arg -> (p.Ast.f_name, Sym.const arg))
                  action.Ast.a_params args
                @ saved;
              st.tables <- (name, aname) :: st.tables;
              run_stmts st action.Ast.a_body (fun st ->
                  st.params <- saved;
                  k st)
        in
        (* in priority order: entry_i fires when it matches and none of the
           earlier (higher-ranked) entries match *)
        let rec branch st = function
          | [] -> run_action st tbl.Ast.t_default_action tbl.Ast.t_default_args k
          | e :: rest ->
              fork st (entry_match_cond st tbl e)
                (fun st -> run_action st e.Entry.action e.Entry.args k)
                (fun st -> branch st rest)
        in
        branch st entries
  in

  (* ---------------- parser ---------------- *)

  let extract st hname =
    match Ast.find_header program hname with
    | None -> invalid_arg (Printf.sprintf "Sexec: header %s" hname)
    | Some hd ->
        Hashtbl.replace st.validity hname true;
        let fieldvars =
          List.map
            (fun (fd : Ast.field_decl) ->
              let e =
                Sym.fresh_var
                  ~name:(hname ^ "." ^ fd.Ast.f_name)
                  ~width:fd.Ast.f_width
              in
              Hashtbl.replace st.fields (hname, fd.Ast.f_name) e;
              match e with Sym.Var v -> (fd.Ast.f_name, v) | _ -> assert false)
            hd.Ast.h_fields
        in
        st.extracts <- (hname, fieldvars) :: st.extracts
  in

  let run_pipeline st =
    run_stmts st program.Ast.p_ingress (fun st ->
        if dropped st then finish st (Dropped "ingress")
        else
          run_stmts st program.Ast.p_egress (fun st ->
              if dropped st then finish st (Dropped "egress") else finish st Forwarded))
  in

  let accept st =
    if program.Ast.p_verify_ipv4_checksum && is_valid st "ipv4" then begin
      (* free boolean: the checksum verifies or it does not *)
      let ok = copy_state st in
      ok.checksum_assumed <- true;
      run_pipeline ok;
      (* [st] is dead after this choice: finish it in place *)
      finish st (Rejected Stdmeta.error_checksum)
    end
    else run_pipeline st
  in

  let rec run_state st name budget =
    if budget <= 0 then finish st (Rejected Stdmeta.error_underrun)
    else
      match Ast.find_state program name with
      | None -> invalid_arg (Printf.sprintf "Sexec: state %s" name)
      | Some state ->
          List.iter (extract st) state.Ast.ps_extracts;
          let goto st (t : Ast.ptarget) =
            match t with
            | Ast.To_accept -> accept st
            | Ast.To_reject -> finish st (Rejected Stdmeta.error_reject)
            | Ast.To_state s -> run_state st s (budget - 1)
          in
          (match state.Ast.ps_transition with
          | Ast.Direct t -> goto st t
          | Ast.Select (keys, cases, default) ->
              let key_exprs = List.map (eval st) keys in
              let case_cond (case : Ast.select_case) =
                List.fold_left2
                  (fun acc key (v, mask) ->
                    let c =
                      match mask with
                      | None -> Sym.bin Ast.Eq key (Sym.const v)
                      | Some m ->
                          Sym.bin Ast.Eq
                            (Sym.bin Ast.BAnd key (Sym.const m))
                            (Sym.const (Value.logand v m))
                    in
                    Sym.bin Ast.LAnd acc c)
                  (Sym.const Value.tru) key_exprs case.Ast.sc_keysets
              in
              let rec cases_loop st = function
                | [] -> goto st default
                | case :: rest ->
                    fork st (case_cond case)
                      (fun st -> goto st case.Ast.sc_target)
                      (fun st -> cases_loop st rest)
              in
              cases_loop st cases)
  in

  let st0 =
    {
      fields = Hashtbl.create 16;
      validity = Hashtbl.create 8;
      metas = Hashtbl.create 8;
      stds = Hashtbl.create 4;
      params = [];
      conds = [];
      extracts = [];
      tables = [];
      checksum_assumed = false;
      invalid_reads = [];
    }
  in
  Hashtbl.replace st0.stds Ast.Ingress_port (Sym.Var ingress_port_var);
  (try
     match program.Ast.p_parser with
     | [] -> accept st0
     | start :: _ -> run_state st0 start.Ast.ps_name 64
   with Too_many_paths -> ());
  { paths = List.rev !paths; obligations = List.rev !obligations; truncated = !truncated }

(* ------------------------------------------------------------------ *)
(* Witness rendering                                                   *)
(* ------------------------------------------------------------------ *)

let witness_bits path model =
  let header_bits (hname, fieldvars) =
    let w = Bitstring.Writer.create () in
    List.iter
      (fun ((_, (var : Sym.var)) : string * Sym.var) ->
        Bitstring.Writer.push_int64 w ~width:var.Sym.v_width
          (Value.to_int64 (Value.make ~width:var.Sym.v_width
             (Value.to_int64 (Solver.model_value model var.Sym.v_id)))))
      fieldvars;
    let bits = Bitstring.Writer.contents w in
    (hname, fieldvars, bits)
  in
  let rendered = List.map header_bits path.p_extracts in
  (* repair the ipv4 checksum when the path assumed it verifies *)
  let rendered =
    if not path.p_checksum_assumed_ok then rendered
    else
      List.map
        (fun (hname, fieldvars, bits) ->
          if not (String.equal hname "ipv4") then (hname, fieldvars, bits)
          else begin
            (* locate the checksum field offset *)
            let off = ref 0 in
            let csum_off = ref None in
            List.iter
              (fun ((fname, (var : Sym.var)) : string * Sym.var) ->
                if String.equal fname "checksum" then csum_off := Some !off;
                off := !off + var.Sym.v_width)
              fieldvars;
            match !csum_off with
            | None -> (hname, fieldvars, bits)
            | Some coff ->
                let zeroed = Bitstring.set_int64 bits ~off:coff ~width:16 0L in
                let sum = Bitutil.Checksum.checksum_bits zeroed in
                (hname, fieldvars, Bitstring.set_int64 zeroed ~off:coff ~width:16 (Int64.of_int sum))
          end)
        rendered
  in
  let payload = Bitstring.of_string (String.make 16 '\000') in
  Bitstring.concat (List.map (fun (_, _, b) -> b) rendered @ [ payload ])

let pp_ending ppf = function
  | Rejected e -> Format.fprintf ppf "rejected(%s)" (Stdmeta.error_name e)
  | Dropped w -> Format.fprintf ppf "dropped(%s)" w
  | Forwarded -> Format.fprintf ppf "forwarded"

let pp_path ppf p =
  Format.fprintf ppf "@[<v 2>path -> %a@," pp_ending p.p_ending;
  Format.fprintf ppf "extracts: %s@,"
    (String.concat ">" (List.map fst p.p_extracts));
  Format.fprintf ppf "tables: %s@,"
    (String.concat ">" (List.map (fun (t, a) -> t ^ ":" ^ a) p.p_tables));
  Format.fprintf ppf "conds:@,";
  List.iter (fun c -> Format.fprintf ppf "  %a@," Sym.pp c) p.p_conds;
  Format.fprintf ppf "@]"
