(** Symbolic test oracle: path-covering test vectors with expected
    observations (the P4Testgen direction).

    {!generate} enumerates every parser/control path of a program with
    {!Sexec.explore}, solves each path condition to a concrete covering
    packet with {!Solver.solve}, and derives the packet's expected
    data-plane observation {e from the symbolic path itself} — the
    ending (reject / drop / forward) and the final symbolic egress spec
    evaluated under the model. Nothing here runs the concrete
    interpreter, so the emitted expectations are an independent oracle
    against both {!P4ir.Interp} engines and against a deployed device.

    Vectors feed three consumers: functional sweeps
    ([Netdebug.Usecases.Functional]), the fuzz corpus as
    coverage-complete seeds ([Fuzz.Campaign ~seed_corpus]), and the
    per-path symexec-vs-device divergence check
    ([Netdebug.Usecases.Functional.check_paths]). *)

type expected =
  | Forward of int  (** forwarded out of this egress port *)
  | Drop of string
      (** dropped, with the interpreter's reason string
          (["parser:<error>"], ["ingress"] or ["egress"]) *)

type vector = {
  v_path : int;  (** 1-based index of the path, in exploration order *)
  v_descr : string;
      (** human-readable path descriptor:
          [extracts | table:action,... | ending] *)
  v_ingress_port : int;  (** port the packet must be injected on *)
  v_packet : Bitutil.Bitstring.t;  (** concrete covering packet *)
  v_expected : expected;
  v_state_dependent : bool;
      (** the expectation involves havocked register state — it is only
          guaranteed to hold for the register contents the model chose,
          so consumers should treat it as coverage, not as an oracle *)
}

and stats = {
  tg_paths : int;  (** paths enumerated *)
  tg_solved : int;  (** paths with a covering packet *)
  tg_unsat : int;  (** paths proved unreachable *)
  tg_unknown : int;  (** paths the bounded search could not decide *)
  tg_truncated : bool;  (** exploration stopped at [max_paths] *)
}

and report = { tg_program : string; tg_vectors : vector list; tg_stats : stats }

val generate :
  ?seed:int ->
  ?max_paths:int ->
  ?jobs:int ->
  ?ingress_port:int ->
  P4ir.Ast.program ->
  P4ir.Runtime.t ->
  report
(** Enumerate, solve and render one covering vector per satisfiable
    path. Path conditions are solved in parallel over [jobs] worker
    domains (default 1); results keep exploration order, so the report
    is byte-identical for every [jobs] value. [ingress_port] pins the
    ingress port of every vector by conjoining it to the path condition
    — paths unreachable from that port then report as unsat. [seed]
    seeds the per-path solver search (default [Solver.solve]'s).
    Checksum-reject paths are rendered with a deterministically
    corrupted checksum so the packet cannot accidentally verify. *)

val coverage_complete : report -> bool
(** Every enumerated path was solved and exploration was not truncated. *)

val packets : report -> Bitutil.Bitstring.t list
(** The covering packets, in path order — ready-made fuzz seeds. *)

val expected_str : expected -> string
(** [expected_str e] is ["forward to port N"] or ["drop (reason)"] — the
    same phrasing the functional use-case prints, so divergence messages
    line up across consumers. *)

val render : report -> string
(** Deterministic text report (golden-tested; no wall-clock or
    machine-dependent content). *)

val pp : Format.formatter -> report -> unit

(**/**)

val ensure_invalid_checksum : Sexec.path -> Bitutil.Bitstring.t -> Bitutil.Bitstring.t
(** Exposed for tests. *)

(**/**)
