module Ast = P4ir.Ast
module Value = P4ir.Value
module Stdmeta = P4ir.Stdmeta
module Bitstring = Bitutil.Bitstring

type expected = Forward of int | Drop of string

type vector = {
  v_path : int;
  v_descr : string;
  v_ingress_port : int;
  v_packet : Bitstring.t;
  v_expected : expected;
  v_state_dependent : bool;
}

type stats = {
  tg_paths : int;
  tg_solved : int;
  tg_unsat : int;
  tg_unknown : int;
  tg_truncated : bool;
}

type report = { tg_program : string; tg_vectors : vector list; tg_stats : stats }

let coverage_complete r =
  (not r.tg_stats.tg_truncated) && r.tg_stats.tg_solved = r.tg_stats.tg_paths

(* ------------------------------------------------------------------ *)
(* Path description and expectation                                    *)
(* ------------------------------------------------------------------ *)

let ending_str (e : Sexec.ending) =
  match e with
  | Sexec.Rejected err -> "rejected(" ^ Stdmeta.error_name err ^ ")"
  | Sexec.Dropped where -> "dropped(" ^ where ^ ")"
  | Sexec.Forwarded -> "forwarded"

let descr (p : Sexec.path) =
  let extracts = String.concat ">" (List.map fst p.Sexec.p_extracts) in
  let tables =
    String.concat "," (List.map (fun (t, a) -> t ^ ":" ^ a) p.Sexec.p_tables)
  in
  String.concat " | "
    (List.filter
       (fun s -> s <> "")
       [
         (if extracts = "" then "(no extracts)" else extracts);
         tables;
         ending_str p.Sexec.p_ending;
       ])

(* evaluate a symbolic expression under a model, defaulting unassigned
   variables to zero of their true width (the same convention the
   interpreter applies to uninitialized state) *)
let eval_under model e =
  let widths = Hashtbl.create 4 in
  List.iter (fun (v : Sym.var) -> Hashtbl.replace widths v.Sym.v_id v.Sym.v_width) (Sym.vars e);
  Sym.eval
    (fun id ->
      match Solver.model_value model id with
      | v when Value.width v = 1 && Hashtbl.mem widths id ->
          let w = Hashtbl.find widths id in
          if Value.width v = w then v else Value.zero w
      | v -> v)
    e

let reg_prefixed (v : Sym.var) =
  String.length v.Sym.v_name >= 4 && String.sub v.Sym.v_name 0 4 = "reg:"

let state_dependent (p : Sexec.path) =
  let in_expr e = List.exists reg_prefixed (Sym.vars e) in
  List.exists in_expr p.Sexec.p_conds
  || (p.Sexec.p_ending = Sexec.Forwarded && in_expr p.Sexec.p_egress)

(* ------------------------------------------------------------------ *)
(* Checksum-reject witnesses                                           *)
(* ------------------------------------------------------------------ *)

(* A path that ends [Rejected checksum_error] constrains nothing about
   the checksum field itself (verification is modelled as a free
   boolean), so the solver may accidentally render a packet whose
   checksum happens to verify — which would drive the device down the
   ok-branch instead. Deterministically corrupt the field in that case.
   Skipped when the path condition mentions the checksum variable (the
   program branched on the raw field; overwriting it would break the
   path condition). *)
let ensure_invalid_checksum (p : Sexec.path) packet =
  if p.Sexec.p_ending <> Sexec.Rejected Stdmeta.error_checksum then packet
  else
    match List.assoc_opt "ipv4" p.Sexec.p_extracts with
    | None -> packet
  | Some fieldvars -> (
      let ipv4_off =
        let rec go acc = function
          | [] -> acc
          | ("ipv4", _) :: _ -> acc
          | (_, fvs) :: rest ->
              go (acc + List.fold_left (fun a (_, (v : Sym.var)) -> a + v.Sym.v_width) 0 fvs) rest
        in
        go 0 p.Sexec.p_extracts
      in
      let hdr_len =
        List.fold_left (fun a (_, (v : Sym.var)) -> a + v.Sym.v_width) 0 fieldvars
      in
      let rec field_off acc = function
        | [] -> None
        | (f, (v : Sym.var)) :: rest ->
            if String.equal f "checksum" then Some (acc, v)
            else field_off (acc + v.Sym.v_width) rest
      in
      match field_off 0 fieldvars with
      | None -> packet
      | Some (coff, cvar) ->
          let constrained =
            List.exists
              (fun c ->
                List.exists (fun (v : Sym.var) -> v.Sym.v_id = cvar.Sym.v_id) (Sym.vars c))
              p.Sexec.p_conds
          in
          if constrained then packet
          else begin
            let hdr = Bitstring.sub packet ~off:ipv4_off ~len:hdr_len in
            let zeroed = Bitstring.set_int64 hdr ~off:coff ~width:16 0L in
            let correct = Bitutil.Checksum.checksum_bits zeroed in
            let stored = Bitstring.extract packet ~off:(ipv4_off + coff) ~width:16 in
            if stored <> Int64.of_int correct then packet
            else
              Bitstring.set_int64 packet ~off:(ipv4_off + coff) ~width:16
                (Int64.of_int (correct lxor 0x5555))
          end)

(* ------------------------------------------------------------------ *)
(* Adversarial witness hardening                                       *)
(* ------------------------------------------------------------------ *)

(* A witness for a drop/reject path leaves many packet bits free, and a
   solver that picks them arbitrarily will usually miss every table — so
   a toolchain bug that falls through the drop (e.g. reject compiled as
   accept) still ends in a drop and stays invisible. Harden the witness:
   mine table-hit conjuncts from sibling *forwarded* paths and re-solve
   with them added. Only conjuncts over packet variables this path
   extracts but never constrains are borrowed, so the path condition —
   and hence the expected observation — is untouched; the extra
   conjuncts merely pick the most incriminating witness among the
   packets that cover the path. *)

let var_ids_of conds =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter (fun (v : Sym.var) -> Hashtbl.replace tbl v.Sym.v_id ()) (Sym.vars c))
    conds;
  tbl

let extract_var_ids (p : Sexec.path) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, fvs) ->
      List.iter (fun (_, (v : Sym.var)) -> Hashtbl.replace tbl v.Sym.v_id ()) fvs)
    p.Sexec.p_extracts;
  tbl

(* at most this many alternative hardenings are attempted per path; each
   costs one extra solver call on failure *)
let max_hardenings = 4

let hardenings ~forwarded (p : Sexec.path) =
  match p.Sexec.p_ending with
  | Sexec.Forwarded -> []
  | Sexec.Rejected _ | Sexec.Dropped _ ->
      let ex = extract_var_ids p in
      let constrained = var_ids_of p.Sexec.p_conds in
      let borrowable c =
        match Sym.vars c with
        | [] -> false
        | vs ->
            List.for_all (fun (v : Sym.var) -> Hashtbl.mem ex v.Sym.v_id) vs
            && not
                 (List.exists (fun (v : Sym.var) -> Hashtbl.mem constrained v.Sym.v_id) vs)
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | h :: rest -> h :: take (n - 1) rest
      in
      take max_hardenings
        (List.filter_map
           (fun (f : Sexec.path) ->
             match List.filter borrowable f.Sexec.p_conds with
             | [] -> None
             | usable -> Some usable)
           forwarded)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

type solved = Vec of vector | Unsat_path | Unknown_path

let generate ?seed ?max_paths ?(jobs = 1) ?ingress_port (program : Ast.program) runtime =
  let run = Sexec.explore ?max_paths program runtime in
  let drop_const = Sym.of_int ~width:9 Stdmeta.drop_port in
  (* conjuncts are built here, sequentially: solving workers never
     construct terms, so the domain-local intern tables stay single-writer *)
  let forwarded =
    List.filter (fun (p : Sexec.path) -> p.Sexec.p_ending = Sexec.Forwarded) run.Sexec.paths
  in
  let prepared =
    Array.of_list
      (List.map
         (fun (p : Sexec.path) ->
           let conds = p.Sexec.p_conds in
           let conds =
             match ingress_port with
             | None -> conds
             | Some port ->
                 Sym.bin Ast.Eq
                   (Sym.Var p.Sexec.p_ingress_port)
                   (Sym.of_int ~width:9 port)
                 :: conds
           in
           let conds =
             (* a forwarded path with symbolic egress must not pick the
                drop port, or the concrete packet's observed fate would
                be a drop *)
             if p.Sexec.p_ending = Sexec.Forwarded && Sym.is_const p.Sexec.p_egress = None
             then Sym.bin Ast.Neq p.Sexec.p_egress drop_const :: conds
             else conds
           in
           (p, conds, hardenings ~forwarded p))
         run.Sexec.paths)
  in
  let solve_one i ((p : Sexec.path), conds, hards) =
    let result =
      (* hardened attempts first (deterministic order); the plain path
         condition is the fallback, so hardening can only refine the
         witness, never lose a path *)
      let rec attempt = function
        | [] -> Solver.solve ?seed conds
        | h :: rest -> (
            match Solver.solve ?seed (h @ conds) with
            | Solver.Sat _ as sat -> sat
            | Solver.Unsat | Solver.Unknown -> attempt rest)
      in
      attempt hards
    in
    match result with
    | Solver.Unsat -> Unsat_path
    | Solver.Unknown -> Unknown_path
    | Solver.Sat model ->
        let packet = ensure_invalid_checksum p (Sexec.witness_bits p model) in
        let port =
          match ingress_port with
          | Some port -> port
          | None ->
              Value.to_int (Solver.model_value model p.Sexec.p_ingress_port.Sym.v_id)
        in
        let expected =
          match p.Sexec.p_ending with
          | Sexec.Rejected err -> Drop ("parser:" ^ Stdmeta.error_name err)
          | Sexec.Dropped where -> Drop where
          | Sexec.Forwarded -> Forward (Value.to_int (eval_under model p.Sexec.p_egress))
        in
        Vec
          {
            v_path = i + 1;
            v_descr = descr p;
            v_ingress_port = port;
            v_packet = packet;
            v_expected = expected;
            v_state_dependent = state_dependent p;
          }
  in
  let results =
    if jobs <= 1 || Array.length prepared < 2 then Array.mapi solve_one prepared
    else
      (* results land at their input index, so the vector order is the
         exploration order for every jobs value *)
      Par.Pool.with_pool ~jobs (fun pool ->
          Par.Pool.map_chunks pool ~chunk:1 (fun ~worker:_ i pc -> solve_one i pc) prepared)
  in
  let solved = ref 0 and unsat = ref 0 and unknown = ref 0 in
  let vectors =
    Array.to_list results
    |> List.filter_map (function
         | Vec v ->
             incr solved;
             Some v
         | Unsat_path ->
             incr unsat;
             None
         | Unknown_path ->
             incr unknown;
             None)
  in
  {
    tg_program = program.Ast.p_name;
    tg_vectors = vectors;
    tg_stats =
      {
        tg_paths = Array.length prepared;
        tg_solved = !solved;
        tg_unsat = !unsat;
        tg_unknown = !unknown;
        tg_truncated = run.Sexec.truncated;
      };
  }

let packets r = List.map (fun v -> v.v_packet) r.tg_vectors

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let expected_str = function
  | Forward port -> Printf.sprintf "forward to port %d" port
  | Drop reason -> Printf.sprintf "drop (%s)" reason

let render r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "testgen: %s\n" r.tg_program;
  let s = r.tg_stats in
  pf "  paths: %d enumerated, %d solved, %d unsat, %d unknown%s\n" s.tg_paths s.tg_solved
    s.tg_unsat s.tg_unknown
    (if s.tg_truncated then " (truncated)" else "");
  let denom = s.tg_paths - s.tg_unsat in
  pf "  coverage: %d/%d satisfiable paths (%d%%)\n" s.tg_solved (max denom 0)
    (if denom <= 0 then 100 else 100 * s.tg_solved / denom);
  List.iter
    (fun v ->
      pf "  [%d] %dB @port %d expect %s%s\n" v.v_path
        (Bitstring.byte_length v.v_packet)
        v.v_ingress_port (expected_str v.v_expected)
        (if v.v_state_dependent then " (state-dependent)" else "");
      pf "      %s\n" v.v_descr)
    r.tg_vectors;
  Buffer.contents b

let pp ppf r = Format.pp_print_string ppf (render r)
