(** Symbolic bit-vector expressions over the fields of an unknown packet.

    The symbolic executor assigns every extracted header field a fresh
    variable; all computation in the program then builds expressions over
    those variables. Widths follow {!P4ir.Value} (1-64 bits); booleans are
    width-1 expressions.

    Terms are {e hash-consed}: the smart constructors ({!bin}, {!un},
    {!slice}, {!concat}, {!const}) intern every node in a domain-local
    table, so structurally equal subterms built during one exploration
    session share a single heap node. Repeated path-condition prefixes —
    the same table-entry match re-evaluated on every branch of a fork
    tree — therefore cost one allocation total instead of one per path.
    Interning is an optimization, never a semantic contract: terms built
    with the bare constructors, or across {!new_session} boundaries,
    simply lose sharing, and {!equal} falls back to structural
    comparison. *)

type var = { v_id : int; v_name : string; v_width : int }
(** A symbolic variable: [v_id] is globally unique (allocation is
    atomic, so variables minted by concurrent domains never collide);
    [v_name] and [v_width] are for diagnostics and witness rendering. *)

type t =
  | Const of P4ir.Value.t  (** literal bit-vector *)
  | Var of var  (** unknown input bits (header field, register havoc) *)
  | Bin of P4ir.Ast.binop * t * t  (** binary operator application *)
  | Un of P4ir.Ast.unop * t  (** unary operator application *)
  | Slice of t * int * int  (** [Slice (e, msb, lsb)], inclusive bounds *)
  | Concat of t * t  (** bit concatenation, first operand on top *)

val fresh_var : name:string -> width:int -> t
(** A variable with a globally unique id; names are diagnostics only.
    Safe to call from any domain. *)

val const : P4ir.Value.t -> t
(** Interned constant term. *)

val of_int : width:int -> int -> t
(** [of_int ~width i] is [const (Value.of_int ~width i)]. *)

val width : t -> int
(** Bit width of the expression (comparisons and logicals are width 1). *)

val is_const : t -> P4ir.Value.t option
(** The value when the expression folded to a constant. *)

val bin : P4ir.Ast.binop -> t -> t -> t
(** Smart constructor: constant-folds, applies simple identities
    (x+0, x&0, x^x, masks, double negation, ...) and interns the
    resulting node. *)

val un : P4ir.Ast.unop -> t -> t
(** Smart constructor for unary operators; cancels double negation. *)

val slice : t -> msb:int -> lsb:int -> t
(** Bit slice with inclusive bounds; the full-width slice is the
    identity. *)

val concat : t -> t -> t
(** Bit concatenation; folds when both sides are constants. *)

val not_ : t -> t
(** Boolean negation of a width-1 expression. *)

val vars : t -> var list
(** Distinct variables, by id, in first-occurrence order. *)

val eval : (int -> P4ir.Value.t) -> t -> P4ir.Value.t
(** Evaluate under an assignment from var id to value. Logical
    operators short-circuit, so irrelevant branches are never evaluated.
    @raise Not_found if the assignment misses a variable. *)

val equal : t -> t -> bool
(** Structural equality (after construction-time simplification), with a
    constant-time physical fast path for terms interned in the same
    session. *)

val new_session : unit -> unit
(** Reset the calling domain's intern table. {!Sexec.explore} calls this
    at the start of every exploration: fresh variables make sharing
    across explorations impossible, so resetting bounds the table's
    memory without losing any useful sharing. Existing terms stay valid
    — they only stop being shared with terms interned later. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, fully parenthesized. *)
