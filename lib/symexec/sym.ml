module Value = P4ir.Value
module Ast = P4ir.Ast

type var = { v_id : int; v_name : string; v_width : int }

type t =
  | Const of Value.t
  | Var of var
  | Bin of Ast.binop * t * t
  | Un of Ast.unop * t
  | Slice of t * int * int
  | Concat of t * t

(* ---------------- hash-consing ----------------

   The smart constructors intern every node they build in a domain-local
   table, so structurally equal subterms constructed during one symbolic
   exploration share one heap node. A lookup compares candidate children
   with physical equality: children built by the smart constructors are
   themselves interned, so structural equality of a candidate collapses
   to physical equality of its parts — the probe is a bucket scan that
   allocates nothing on a hit. Fresh variables are globally unique and
   never interned.

   The table is scoped to one exploration: every exploration mints fresh
   variables, so its terms can never be shared with the next one anyway.
   {!new_session} (called by [Sexec.explore]) resets the table instead
   of letting it grow without bound across explorations. Terms that
   outlive a reset stay valid — they merely stop being shared with terms
   built later, which is why {!equal} keeps a structural fallback. *)

type itbl = { mutable buckets : t list array; mutable count : int }

let dls_itbl : itbl Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { buckets = Array.make 1024 []; count = 0 })

let new_session () =
  let tbl = Domain.DLS.get dls_itbl in
  Array.fill tbl.buckets 0 (Array.length tbl.buckets) [];
  tbl.count <- 0

let comb h x = (h * 31) + x

(* structural, via a depth-limited [Hashtbl.hash_param]: deterministic
   whether or not the children happen to be shared. The probe compares
   candidates field-wise, so the hash only steers bucket placement — a
   shallow traversal is plenty *)
let hsub x = Hashtbl.hash_param 4 16 x
let hash_node = function
  | Const v -> comb 1 (Hashtbl.hash v)
  | Var v -> comb 2 v.v_id
  | Bin (op, a, b) ->
      comb (comb (comb 3 (Hashtbl.hash op)) (hsub a)) (hsub b)
  | Un (op, a) -> comb (comb 4 (Hashtbl.hash op)) (hsub a)
  | Slice (a, msb, lsb) -> comb (comb (comb 5 (hsub a)) msb) lsb
  | Concat (a, b) -> comb (comb 6 (hsub a)) (hsub b)

let resize tbl =
  let old = tbl.buckets in
  let n = Array.length old * 2 in
  let fresh = Array.make n [] in
  Array.iter
    (fun bucket ->
      List.iter
        (fun node ->
          let i = hash_node node land (n - 1) in
          fresh.(i) <- node :: fresh.(i))
        bucket)
    old;
  tbl.buckets <- fresh

let added tbl h node =
  if tbl.count >= 2 * Array.length tbl.buckets then resize tbl;
  let i = h land (Array.length tbl.buckets - 1) in
  tbl.buckets.(i) <- node :: tbl.buckets.(i);
  tbl.count <- tbl.count + 1;
  node

(* the constructors of [Ast.binop]/[Ast.unop] are all constant, hence
   immediates: physical equality below is value equality *)

let rec scan_const v = function
  | [] -> raise_notrace Not_found
  | (Const v' as n) :: _ when Value.equal v' v -> n
  | _ :: rest -> scan_const v rest

let rec scan_bin op a b = function
  | [] -> raise_notrace Not_found
  | (Bin (op', a', b') as n) :: _ when op' == op && a' == a && b' == b -> n
  | _ :: rest -> scan_bin op a b rest

let rec scan_un op a = function
  | [] -> raise_notrace Not_found
  | (Un (op', a') as n) :: _ when op' == op && a' == a -> n
  | _ :: rest -> scan_un op a rest

let rec scan_slice a msb lsb = function
  | [] -> raise_notrace Not_found
  | (Slice (a', msb', lsb') as n) :: _ when a' == a && msb' = msb && lsb' = lsb -> n
  | _ :: rest -> scan_slice a msb lsb rest

let rec scan_concat a b = function
  | [] -> raise_notrace Not_found
  | (Concat (a', b') as n) :: _ when a' == a && b' == b -> n
  | _ :: rest -> scan_concat a b rest

let intern_const v =
  let tbl = Domain.DLS.get dls_itbl in
  let h = comb 1 (Hashtbl.hash v) in
  try scan_const v tbl.buckets.(h land (Array.length tbl.buckets - 1))
  with Not_found -> added tbl h (Const v)

let intern_bin op a b =
  let tbl = Domain.DLS.get dls_itbl in
  let h = comb (comb (comb 3 (Hashtbl.hash op)) (hsub a)) (hsub b) in
  try scan_bin op a b tbl.buckets.(h land (Array.length tbl.buckets - 1))
  with Not_found -> added tbl h (Bin (op, a, b))

let intern_un op a =
  let tbl = Domain.DLS.get dls_itbl in
  let h = comb (comb 4 (Hashtbl.hash op)) (hsub a) in
  try scan_un op a tbl.buckets.(h land (Array.length tbl.buckets - 1))
  with Not_found -> added tbl h (Un (op, a))

let intern_slice a msb lsb =
  let tbl = Domain.DLS.get dls_itbl in
  let h = comb (comb (comb 5 (hsub a)) msb) lsb in
  try scan_slice a msb lsb tbl.buckets.(h land (Array.length tbl.buckets - 1))
  with Not_found -> added tbl h (Slice (a, msb, lsb))

let intern_concat a b =
  let tbl = Domain.DLS.get dls_itbl in
  let h = comb (comb 6 (hsub a)) (hsub b) in
  try scan_concat a b tbl.buckets.(h land (Array.length tbl.buckets - 1))
  with Not_found -> added tbl h (Concat (a, b))

(* ---------------- construction ---------------- *)

let counter = Atomic.make 0

let fresh_var ~name ~width =
  Var { v_id = 1 + Atomic.fetch_and_add counter 1; v_name = name; v_width = width }

let const v = intern_const v

let of_int ~width i = intern_const (Value.of_int ~width i)

let rec width = function
  | Const v -> Value.width v
  | Var v -> v.v_width
  | Bin ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.LAnd | Ast.LOr), _, _)
    ->
      1
  | Bin (_, a, _) -> width a
  | Un (Ast.LNot, _) -> 1
  | Un (Ast.BNot, a) -> width a
  | Slice (_, msb, lsb) -> msb - lsb + 1
  | Concat (a, b) -> width a + width b

let is_const = function Const v -> Some v | _ -> None

let apply_binop op (a : Value.t) (b : Value.t) =
  match (op : Ast.binop) with
  | Ast.Add -> Value.add a b
  | Ast.Sub -> Value.sub a b
  | Ast.Mul -> Value.mul a b
  | Ast.BAnd -> Value.logand a b
  | Ast.BOr -> Value.logor a b
  | Ast.BXor -> Value.logxor a b
  | Ast.Shl -> Value.shift_left a (Value.to_int b)
  | Ast.Shr -> Value.shift_right a (Value.to_int b)
  | Ast.Eq -> Value.eq a b
  | Ast.Neq -> Value.neq a b
  | Ast.Lt -> Value.lt a b
  | Ast.Le -> Value.le a b
  | Ast.Gt -> Value.gt a b
  | Ast.Ge -> Value.ge a b
  | Ast.LAnd -> Value.of_bool (Value.to_bool a && Value.to_bool b)
  | Ast.LOr -> Value.of_bool (Value.to_bool a || Value.to_bool b)

let tru = intern_const Value.tru

let fls = intern_const Value.fls

let bin op a b =
  match (is_const a, is_const b) with
  | Some va, Some vb -> intern_const (apply_binop op va vb)
  | ca, cb -> (
      let zero v = match v with Some x -> Value.is_zero x | None -> false in
      let all_ones v =
        match v with
        | Some x -> Value.equal x (Value.ones (Value.width x))
        | None -> false
      in
      match (op : Ast.binop) with
      | Ast.Add when zero cb -> a
      | Ast.Add when zero ca -> b
      | Ast.Sub when zero cb -> a
      | Ast.BAnd when zero ca || zero cb -> intern_const (Value.zero (width a))
      | Ast.BAnd when all_ones cb -> a
      | Ast.BAnd when all_ones ca -> b
      | Ast.BOr when zero cb -> a
      | Ast.BOr when zero ca -> b
      | Ast.BXor when zero cb -> a
      | Ast.BXor when zero ca -> b
      | Ast.LAnd when ca = Some Value.tru -> b
      | Ast.LAnd when cb = Some Value.tru -> a
      | Ast.LAnd when zero ca || zero cb -> fls
      | Ast.LOr when zero ca -> b
      | Ast.LOr when zero cb -> a
      | Ast.LOr when ca = Some Value.tru || cb = Some Value.tru -> tru
      | Ast.Eq when a == b || a = b -> tru
      | Ast.Neq when a == b || a = b -> fls
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.LAnd | Ast.LOr ->
          intern_bin op a b)

let un op a =
  match (op, is_const a) with
  | Ast.BNot, Some v -> intern_const (Value.lognot v)
  | Ast.LNot, Some v -> intern_const (Value.of_bool (not (Value.to_bool v)))
  | Ast.LNot, None -> (
      match a with Un (Ast.LNot, inner) -> inner | _ -> intern_un op a)
  | Ast.BNot, None -> (
      match a with Un (Ast.BNot, inner) -> inner | _ -> intern_un op a)

let slice e ~msb ~lsb =
  if lsb = 0 && msb = width e - 1 then e
  else
    match is_const e with
    | Some v -> intern_const (Value.slice v ~msb ~lsb)
    | None -> intern_slice e msb lsb

let concat a b =
  match (is_const a, is_const b) with
  | Some va, Some vb -> intern_const (Value.concat va vb)
  | _ -> intern_concat a b

let not_ e = un Ast.LNot e

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v.v_id) then begin
          Hashtbl.add seen v.v_id ();
          acc := v :: !acc
        end
    | Bin (_, a, b) | Concat (a, b) ->
        go a;
        go b
    | Un (_, a) | Slice (a, _, _) -> go a
  in
  go e;
  List.rev !acc

let rec eval lookup = function
  | Const v -> v
  | Var v -> lookup v.v_id
  | Bin (op, a, b) -> (
      (* short-circuit logicals to avoid evaluating irrelevant branches *)
      match op with
      | Ast.LAnd ->
          if Value.to_bool (eval lookup a) then
            Value.of_bool (Value.to_bool (eval lookup b))
          else Value.fls
      | Ast.LOr ->
          if Value.to_bool (eval lookup a) then Value.tru
          else Value.of_bool (Value.to_bool (eval lookup b))
      | _ -> apply_binop op (eval lookup a) (eval lookup b))
  | Un (Ast.BNot, a) -> Value.lognot (eval lookup a)
  | Un (Ast.LNot, a) -> Value.of_bool (not (Value.to_bool (eval lookup a)))
  | Slice (a, msb, lsb) -> Value.slice (eval lookup a) ~msb ~lsb
  | Concat (a, b) -> Value.concat (eval lookup a) (eval lookup b)

(* physical first — interned terms of one session hit it — with the
   structural fallback for terms built across sessions or by hand *)
let equal a b = a == b || a = b

let binop_str (op : Ast.binop) =
  match op with
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.BAnd -> "&"
  | Ast.BOr -> "|"
  | Ast.BXor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.LAnd -> "&&"
  | Ast.LOr -> "||"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var v -> Format.fprintf ppf "%s#%d" v.v_name v.v_id
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b
  | Un (Ast.BNot, a) -> Format.fprintf ppf "~%a" pp a
  | Un (Ast.LNot, a) -> Format.fprintf ppf "!%a" pp a
  | Slice (a, msb, lsb) -> Format.fprintf ppf "%a[%d:%d]" pp a msb lsb
  | Concat (a, b) -> Format.fprintf ppf "(%a ++ %a)" pp a pp b
