(* Log-binned histogram: bin i covers [base^i, base^(i+1)). Values below 1.0
   land in bin 0. base is chosen so relative bin error stays within ~5%. *)

let base = 1.05

let log_base = log base

let nbins = 1024

type t = {
  bins : int array;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable minv : float;
  mutable maxv : float;
}

let create () =
  {
    bins = Array.make nbins 0;
    n = 0;
    sum = 0.;
    sumsq = 0.;
    minv = infinity;
    maxv = 0.;
  }

let bin_of v = if v < 1.0 then 0 else min (nbins - 1) (1 + int_of_float (log v /. log_base))

let upper_of i = if i = 0 then 1.0 else base ** float_of_int i

let add t v =
  let v = if v < 0. then 0. else v in
  t.bins.(bin_of v) <- t.bins.(bin_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  t.sumsq <- t.sumsq +. (v *. v);
  if v < t.minv then t.minv <- v;
  if v > t.maxv then t.maxv <- v

let count t = t.n

let total t = t.sum

let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

(* minv starts at +inf as the fold identity; never leak it to callers *)
let min_value t = if t.n = 0 then 0. else t.minv

let max_value t = t.maxv

let stddev t =
  if t.n < 2 then 0.
  else
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    if var < 0. then 0. else sqrt var

let percentile t p =
  (* guard before touching maxv: on an empty histogram maxv is still the
     0. fold identity and must not masquerade as a measured quantile *)
  if t.n = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
    let rank = max 1 (min t.n rank) in
    let acc = ref 0 in
    let result = ref t.maxv in
    (try
       for i = 0 to nbins - 1 do
         acc := !acc + t.bins.(i);
         if !acc >= rank then begin
           result := min t.maxv (upper_of i);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let absorb a b =
  for i = 0 to nbins - 1 do
    a.bins.(i) <- a.bins.(i) + b.bins.(i)
  done;
  a.n <- a.n + b.n;
  a.sum <- a.sum +. b.sum;
  a.sumsq <- a.sumsq +. b.sumsq;
  a.minv <- min a.minv b.minv;
  a.maxv <- max a.maxv b.maxv

let merge a b =
  let t = create () in
  for i = 0 to nbins - 1 do
    t.bins.(i) <- a.bins.(i) + b.bins.(i)
  done;
  t.n <- a.n + b.n;
  t.sum <- a.sum +. b.sum;
  t.sumsq <- a.sumsq +. b.sumsq;
  t.minv <- min a.minv b.minv;
  t.maxv <- max a.maxv b.maxv;
  t

let copy t =
  {
    bins = Array.copy t.bins;
    n = t.n;
    sum = t.sum;
    sumsq = t.sumsq;
    minv = t.minv;
    maxv = t.maxv;
  }

let delta ~since cur =
  let t = create () in
  for i = 0 to nbins - 1 do
    let d = cur.bins.(i) - since.bins.(i) in
    t.bins.(i) <- (if d < 0 then 0 else d)
  done;
  t.n <- max 0 (cur.n - since.n);
  t.sum <- cur.sum -. since.sum;
  t.sumsq <- cur.sumsq -. since.sumsq;
  if t.n > 0 then begin
    (* the cumulative min/max do not say which window an extreme landed in,
       so bound the window extremes by its populated bins instead *)
    (try
       for i = 0 to nbins - 1 do
         if t.bins.(i) > 0 then begin
           t.minv <- (if i = 0 then 0. else upper_of (i - 1));
           raise Exit
         end
       done
     with Exit -> ());
    (try
       for i = nbins - 1 downto 0 do
         if t.bins.(i) > 0 then begin
           t.maxv <- min cur.maxv (upper_of i);
           raise Exit
         end
       done
     with Exit -> ())
  end;
  t

let clear t =
  Array.fill t.bins 0 nbins 0;
  t.n <- 0;
  t.sum <- 0.;
  t.sumsq <- 0.;
  t.minv <- infinity;
  t.maxv <- 0.

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f" t.n (mean t)
      (percentile t 50.) (percentile t 99.) t.maxv
