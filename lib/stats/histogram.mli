(** Streaming histogram with exact retention of small samples and
    logarithmic binning beyond, used for latency distributions.

    Values are non-negative floats (we use nanoseconds). Percentile queries
    are upper bounds of the containing bin, so reported quantiles never
    understate latency. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** 0 when empty (never the internal +inf fold identity). *)

val max_value : t -> float
(** 0 when empty. *)

val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]]. 0 when empty. *)

val merge : t -> t -> t
(** New histogram holding both datasets. *)

val absorb : t -> t -> unit
(** [absorb a b] adds [b]'s dataset into [a] in place, leaving [b]
    untouched. Use when [a] is a live handle held by its owner (e.g. a
    registered device histogram) and replacing it would orphan future
    updates. [a] and [b] must be distinct. *)

val copy : t -> t
(** Independent snapshot: later [add]s to either side do not affect the
    other. Used by the observability sampler to window a live histogram. *)

val delta : since:t -> t -> t
(** [delta ~since cur] is the dataset added to [cur] after [since] was
    [copy]ed from it. Bin counts, [count], [total] and [stddev] inputs are
    exact; [min_value]/[max_value] are bin-bound approximations because the
    cumulative extremes do not record which window they landed in.
    [percentile] on the result reports window quantiles. *)

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** "n=.. mean=.. p50=.. p99=.. max=..". *)
