module Device = Target.Device
module Harness = Netdebug.Harness
module Span = Telemetry.Span

type verdict =
  | Healthy
  | No_route
  | Device_fault of {
      f_device : string;
      f_verdict : Netdebug.Localize.verdict;
      f_evidence : Netdebug.Localize.evidence;
    }
  | Link_suspect of { after : string }

type evidence = {
  n_path : string list;
  n_rx_deltas : (string * int64) list;
  n_span_counts : (string * int) list;
  n_count : int;
  n_delivered : int;
  n_bisect_probes : int;
}

let packet_spans_since spans watermark =
  let n = ref 0 in
  Span.iter spans (fun sp ->
      if sp.Span.sp_kind = Span.Packet && sp.Span.sp_id >= watermark then incr n);
  !n

let locate ?(count = 16) fabric ~(src : Topology.host) ~(dst : Topology.host) =
  let topo = Fabric.topology fabric in
  match Route.path topo ~src_edge:src.Topology.h_node ~dst_edge:dst.Topology.h_node with
  | None ->
      ( No_route,
        {
          n_path = [];
          n_rx_deltas = [];
          n_span_counts = [];
          n_count = count;
          n_delivered = 0;
          n_bisect_probes = 0;
        } )
  | Some path ->
      let names =
        List.map (fun id -> topo.Topology.nodes.(id).Topology.n_name) path
      in
      let devs =
        List.map (fun id -> (Fabric.device fabric id).Harness.device) path
      in
      (* snapshot counters and span state, then force every-packet spans
         for the burst so the trail evidence is complete *)
      let rx_before =
        List.map (fun d -> Stats.Counter.Set.get (Device.counters d) "rx/external") devs
      in
      let saved = List.map (fun d -> Span.sampling (Device.spans d)) devs in
      let marks = List.map (fun d -> Span.issued (Device.spans d)) devs in
      List.iter (fun d -> Device.set_span_sampling d 1) devs;
      let bits = Fleet.probe_bits ~payload_bytes:26 src dst in
      let ids = List.init count (fun _ -> Fabric.send fabric ~src bits) in
      Fabric.run fabric;
      let delivered =
        List.length
          (List.filter
             (fun id ->
               match Fabric.fate fabric id with
               | Fabric.Delivered { d_host; _ } -> d_host = dst.Topology.h_id
               | _ -> false)
             ids)
      in
      let rx_deltas =
        List.map2
          (fun d before ->
            Int64.sub (Stats.Counter.Set.get (Device.counters d) "rx/external") before)
          devs rx_before
      in
      let span_counts =
        List.map2 (fun d mark -> packet_spans_since (Device.spans d) mark) devs marks
      in
      List.iter2 (fun d s -> Device.set_span_sampling d s) devs saved;
      let deltas = Array.of_list rx_deltas in
      let ev probes =
        {
          n_path = names;
          n_rx_deltas = List.combine names rx_deltas;
          n_span_counts = List.combine names span_counts;
          n_count = count;
          n_delivered = delivered;
          n_bisect_probes = probes;
        }
      in
      if delivered = count then (Healthy, ev 0)
      else begin
        (* Bisect for the last device the full burst reached. Ingress
           counts are monotone non-increasing along the path (all probes
           follow the same installed routes), and position 0 is full by
           construction (the fabric injects there). *)
        let full i = deltas.(i) >= Int64.of_int count in
        let probes = ref 0 in
        let last = Array.length deltas - 1 in
        let f =
          if
            last = 0
            ||
            (incr probes;
             full last)
          then last
          else begin
            let lo = ref 0 and hi = ref last in
            while !hi - !lo > 1 do
              let mid = (!lo + !hi) / 2 in
              incr probes;
              if full mid then lo := mid else hi := mid
            done;
            !lo
          end
        in
        let name = List.nth names f in
        let harness = Fabric.device fabric (List.nth path f) in
        let f_verdict, f_evidence = Netdebug.Localize.locate ~count harness ~probe:bits in
        match f_verdict with
        | Netdebug.Localize.Healthy when f < last ->
            (* forwards fine in isolation: the loss is between it and its
               successor *)
            (Link_suspect { after = name }, ev !probes)
        | _ -> (Device_fault { f_device = name; f_verdict; f_evidence }, ev !probes)
      end

let verdict_to_string = function
  | Healthy -> "healthy: full burst delivered"
  | No_route -> "no route between these edges"
  | Device_fault { f_device; f_verdict; _ } ->
      Printf.sprintf "device %s: %s" f_device
        (Netdebug.Localize.verdict_to_string f_verdict)
  | Link_suspect { after } -> Printf.sprintf "link suspect after device %s" after
