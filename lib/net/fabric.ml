module Device = Target.Device
module Harness = Netdebug.Harness
module Registry = Telemetry.Registry

type fate =
  | In_flight
  | Delivered of { d_host : int; d_at_ns : float; d_bits : Bitutil.Bitstring.t }
  | Lost of { l_device : string; l_reason : string }

type hop = { hop_device : int; hop_in_port : int; hop_at_ns : float }

type probe = { mutable p_trail : hop list (* reversed *); mutable p_fate : fate }

type port_dest =
  | D_host of Topology.host
  | D_link of { d_peer : int; d_peer_port : int; d_delay_ns : float }
  | D_none

type event = {
  ev_at : float;
  ev_seq : int;  (** FIFO tie-break at equal times: keeps runs deterministic *)
  ev_node : int;
  ev_port : int;
  ev_probe : int;
  ev_bits : Bitutil.Bitstring.t;
}

(* Minimal binary min-heap on (ev_at, ev_seq). The fabric rarely holds
   more than a handful of in-flight events, but the heap keeps [run]
   O(log n) per hop no matter how many probes are batched. *)
module Heap = struct
  type t = { mutable arr : event array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let before a b = a.ev_at < b.ev_at || (a.ev_at = b.ev_at && a.ev_seq < b.ev_seq)

  let push h ev =
    if h.len = Array.length h.arr then begin
      let cap = max 8 (2 * h.len) in
      let arr = Array.make cap ev in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    h.arr.(h.len) <- ev;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before h.arr.(!i) h.arr.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.arr.(p) in
      h.arr.(p) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.arr.(0) <- h.arr.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.len && before h.arr.(l) h.arr.(!s) then s := l;
          if r < h.len && before h.arr.(r) h.arr.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let tmp = h.arr.(!s) in
            h.arr.(!s) <- h.arr.(!i);
            h.arr.(!i) <- tmp;
            i := !s
          end
        done
      end;
      Some top
    end
end

type t = {
  topo : Topology.t;
  devices : Harness.t array;
  dest : port_dest array array;  (** [node].(port) — where an emission goes *)
  heap : Heap.t;
  mutable now : float;
  mutable seq : int;
  mutable next_probe : int;
  mutable in_flight : int;
  (* probe ids are dense (0, 1, 2, ... since the last [clear_probes]), so
     the fate store is a growable array indexed by id — the B16 gate
     prices every hop, and a hash lookup per hop is pure overhead *)
  mutable probes : probe array;
  metrics : Registry.t;
  c_sent : Stats.Counter.t;
  c_delivered : Stats.Counter.t;
  c_lost : Stats.Counter.t;
}

let dest_map (topo : Topology.t) =
  let dest =
    Array.map
      (fun (n : Topology.node) -> Array.make n.Topology.n_ports D_none)
      topo.Topology.nodes
  in
  Array.iter
    (fun (l : Topology.link) ->
      dest.(l.Topology.l_a).(l.Topology.l_a_port) <-
        D_link
          { d_peer = l.Topology.l_b; d_peer_port = l.Topology.l_b_port;
            d_delay_ns = l.Topology.l_delay_ns };
      dest.(l.Topology.l_b).(l.Topology.l_b_port) <-
        D_link
          { d_peer = l.Topology.l_a; d_peer_port = l.Topology.l_a_port;
            d_delay_ns = l.Topology.l_delay_ns })
    topo.Topology.links;
  Array.iter
    (fun (h : Topology.host) -> dest.(h.Topology.h_node).(h.Topology.h_port) <- D_host h)
    topo.Topology.hosts;
  dest

let of_devices topo devices =
  let metrics = Registry.create () in
  {
    topo;
    devices;
    dest = dest_map topo;
    heap = Heap.create ();
    now = 0.;
    seq = 0;
    next_probe = 0;
    in_flight = 0;
    probes = [||];
    metrics;
    c_sent = Registry.counter metrics ~help:"probes sent into the fabric" "net/probes_sent";
    c_delivered =
      Registry.counter metrics ~help:"probes delivered to a host" "net/delivered";
    c_lost = Registry.counter metrics ~help:"probes lost inside the fabric" "net/lost";
  }

let create ?(quirks = Sdnet.Quirks.none) ?span_sampling (topo : Topology.t) =
  (match Topology.validate topo with
  | Ok () -> ()
  | Error e -> invalid_arg ("Net.Fabric.create: invalid topology: " ^ e));
  let config =
    { Target.Config.netfpga_sume with ports = max 1 (Topology.max_ports topo) }
  in
  let bundle = Route.bundle () in
  let devices =
    Array.map
      (fun (n : Topology.node) ->
        let h =
          Harness.deploy ~quirks ~config ~install_entries:false ?span_sampling bundle
        in
        (match
           P4ir.Runtime.install_all bundle.P4ir.Programs.program
             (Device.runtime h.Harness.device)
             (Route.entries_for topo n.Topology.n_id)
         with
        | Ok () -> ()
        | Error e ->
            invalid_arg
              (Printf.sprintf "Net.Fabric.create: %s: route install failed: %s"
                 n.Topology.n_name e));
        h)
      topo.Topology.nodes
  in
  of_devices topo devices

let replicate t = of_devices t.topo (Array.map (Harness.replicate ~faults:true) t.devices)
let topology t = t.topo
let device t id = t.devices.(id)

let device_named t name =
  match Topology.node_named t.topo name with
  | Some n -> t.devices.(n.Topology.n_id)
  | None -> invalid_arg ("Net.Fabric.device_named: unknown device " ^ name)

let now_ns t = t.now

let push t ~at ~node ~port ~probe ~bits =
  Heap.push t.heap
    { ev_at = at; ev_seq = t.seq; ev_node = node; ev_port = port; ev_probe = probe;
      ev_bits = bits };
  t.seq <- t.seq + 1

let send t ~(src : Topology.host) ?at_ns bits =
  let base = match at_ns with Some a -> Float.max a t.now | None -> t.now in
  let id = t.next_probe in
  t.next_probe <- id + 1;
  let p = { p_trail = []; p_fate = In_flight } in
  if id >= Array.length t.probes then begin
    let cap = max 16 (2 * Array.length t.probes) in
    let arr = Array.make cap p in
    Array.blit t.probes 0 arr 0 (Array.length t.probes);
    t.probes <- arr
  end;
  t.probes.(id) <- p;
  t.in_flight <- t.in_flight + 1;
  push t ~at:(base +. src.Topology.h_delay_ns) ~node:src.Topology.h_node
    ~port:src.Topology.h_port ~probe:id ~bits;
  Stats.Counter.incr t.c_sent;
  id

let probe_exn t id =
  if id >= 0 && id < t.next_probe then t.probes.(id)
  else invalid_arg (Printf.sprintf "Net.Fabric: unknown probe id %d" id)

let terminate t p fate =
  p.p_fate <- fate;
  t.in_flight <- t.in_flight - 1;
  match fate with
  | Delivered _ -> Stats.Counter.incr t.c_delivered
  | Lost _ -> Stats.Counter.incr t.c_lost
  | In_flight -> ()

let run t =
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some ev ->
        if ev.ev_at > t.now then t.now <- ev.ev_at;
        let p = t.probes.(ev.ev_probe) in
        p.p_trail <-
          { hop_device = ev.ev_node; hop_in_port = ev.ev_port; hop_at_ns = ev.ev_at }
          :: p.p_trail;
        let dev = (t.devices.(ev.ev_node)).Harness.device in
        let lost reason =
          terminate t p
            (Lost
               { l_device = t.topo.Topology.nodes.(ev.ev_node).Topology.n_name;
                 l_reason = reason })
        in
        let _, disp =
          Device.inject dev ~source:(Device.External ev.ev_port) ~at_ns:ev.ev_at
            ev.ev_bits
        in
        (match disp with
        | Device.Dropped_pipeline reason -> lost ("dropped by program: " ^ reason)
        | Device.Dropped_queue -> lost "dropped at the input queue"
        | Device.Lost_in_stage stage -> lost ("lost in stage " ^ stage)
        | Device.Emitted _ -> (
            (* drained after every inject, so these outputs belong to this
               packet alone (the device emits at most one copy) *)
            match Device.outputs dev with
            | [] -> lost "emitted but never reached a wire"
            | outs ->
                List.iter
                  (fun (o : Device.output) ->
                    match t.dest.(ev.ev_node).(o.Device.o_port) with
                    | D_host h ->
                        terminate t p
                          (Delivered
                             {
                               d_host = h.Topology.h_id;
                               d_at_ns = o.Device.o_wire_time_ns +. h.Topology.h_delay_ns;
                               d_bits = o.Device.o_bits;
                             })
                    | D_link { d_peer; d_peer_port; d_delay_ns } ->
                        push t ~at:(o.Device.o_wire_time_ns +. d_delay_ns) ~node:d_peer
                          ~port:d_peer_port ~probe:ev.ev_probe ~bits:o.Device.o_bits
                    | D_none ->
                        lost
                          (Printf.sprintf "emitted on unconnected port %d"
                             o.Device.o_port))
                  outs))
  done

let fate t id = (probe_exn t id).p_fate
let trail t id = List.rev (probe_exn t id).p_trail
let probes_sent t = t.next_probe

let clear_probes t =
  if t.in_flight > 0 then
    invalid_arg "Net.Fabric.clear_probes: probes still in flight (run the fabric first)";
  (* the array is reused; [probe_exn] bounds ids by [next_probe], so the
     stale records past index 0 are unreachable *)
  t.next_probe <- 0

let inject_fault t ~device ~stage fault =
  Device.inject_fault (device_named t device).Harness.device ~stage fault

let quiesce t = Array.iter (fun h -> Device.quiesce h.Harness.device) t.devices

let registry t =
  let r = Registry.create () in
  Registry.merge ~into:r t.metrics;
  Array.iteri
    (fun i h ->
      Registry.merge
        ~prefix:(t.topo.Topology.nodes.(i).Topology.n_name ^ "/")
        ~into:r
        (Device.metrics h.Harness.device))
    t.devices;
  r
