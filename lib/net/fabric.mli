(** Co-simulated network fabric: one {!Target.Device} per topology node,
    advanced together against a single virtual clock.

    The fabric is a discrete-event loop over a time-ordered heap. Each
    event is a packet arriving at a device ingress port; processing it
    runs the packet through that device ({!Target.Device.inject}, which
    computes queueing, pipeline and TX serialization times analytically)
    and drains the device's wire output. A packet that leaves on a
    switch-to-switch port is re-scheduled at the peer's ingress at
    [wire_time + link propagation delay]; one that leaves on a
    host-facing port becomes a {e delivery}; anything else (program
    drop, queue drop, injected fault, unconnected port) terminates the
    packet with a named reason at a named device. Because the heap pops
    events in global time order, every device sees its arrivals in
    nondecreasing time and per-device clocks stay consistent with the
    fabric clock.

    Each probe accumulates a {e trail} — the (device, port, time)
    sequence it traversed — which is the network-scale analogue of a
    single device's span tree, and what {!Localize} bisects over
    (corroborated by per-device counters and spans).

    Devices are full {!Netdebug.Harness} deployments (compiled program,
    agent, controller), so every single-device tool — stage-level
    localization, telemetry export, the management protocol — works
    unchanged on any node of the fabric. *)

type fate =
  | In_flight  (** not yet terminated (run the fabric) *)
  | Delivered of { d_host : int; d_at_ns : float; d_bits : Bitutil.Bitstring.t }
      (** reached a host edge port: host id, arrival time (wire +
          host-link delay), and the bits as transformed by the path *)
  | Lost of { l_device : string; l_reason : string }
      (** terminated inside the fabric at this device *)

type hop = {
  hop_device : int;  (** node id *)
  hop_in_port : int;
  hop_at_ns : float;  (** ingress arrival in fabric virtual time *)
}

type t

val create : ?quirks:Sdnet.Quirks.t -> ?span_sampling:int -> Topology.t -> t
(** Deploy one device per node — same router program and device config
    everywhere (ports sized to {!Topology.max_ports}) — and install
    {!Route.entries_for} on each. [quirks] defaults to
    {!Sdnet.Quirks.none} (a faithful toolchain: network validation
    studies the network, not the compiler's quirk catalogue).
    @raise Invalid_argument when the topology fails {!Topology.validate}
    or a route install is rejected. *)

val replicate : t -> t
(** An independent fabric over the same topology: every device
    re-deployed via {!Netdebug.Harness.replicate}[ ~faults:true], so
    installed routes {e and} injected stage faults carry over, but no
    mutable state (clocks, counters, queues, probe history) is shared.
    This is what each {!Par.Pool} worker drives in a sharded fleet run;
    carrying faults is what keeps verdicts identical across [--jobs]
    values when a perturbation experiment is sharded. *)

val topology : t -> Topology.t

val device : t -> int -> Netdebug.Harness.t
(** The deployment behind node [id]. *)

val device_named : t -> string -> Netdebug.Harness.t
(** @raise Invalid_argument for an unknown device name. *)

val now_ns : t -> float
(** The fabric clock: the latest event time processed. *)

val send : t -> src:Topology.host -> ?at_ns:float -> Bitutil.Bitstring.t -> int
(** Schedule a packet from host [src] toward its edge switch; it arrives
    at [max at_ns now + host link delay]. Returns the probe id (dense,
    from 0, reset by {!clear_probes}). Nothing moves until {!run}. *)

val run : t -> unit
(** Drain the event heap: advance all devices through every scheduled
    arrival until no packet is in flight. *)

val fate : t -> int -> fate
val trail : t -> int -> hop list
(** Ingress hops in traversal order (first = the edge switch). *)

val probes_sent : t -> int

val clear_probes : t -> unit
(** Forget terminated probe records and restart probe ids at 0. Device
    state (clocks, counters, routes, faults) is untouched.
    @raise Invalid_argument while probes are still in flight. *)

val inject_fault : t -> device:string -> stage:string -> Target.Fault.t -> unit
(** Seed a stage fault on one named device (see
    {!Target.Device.inject_fault}). *)

val quiesce : t -> unit
(** {!Target.Device.quiesce} every device — flush in-flight TX state
    after a long run so queues do not accumulate. *)

val registry : t -> Telemetry.Registry.t
(** A fresh fleet-level registry: the fabric's own counters
    ([net/probes_sent], [net/delivered], [net/lost]) plus every device's
    metrics merged under a ["<device>/"] prefix
    ({!Telemetry.Registry.merge}), so [edge-0-0/stage/ma:ipv4_lpm/seen]
    and [edge-1-0/…] stay distinguishable in one export. *)
