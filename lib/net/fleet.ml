module Registry = Telemetry.Registry

type scenario = Reachability | Waypoint

let scenario_to_string = function
  | Reachability -> "reachability"
  | Waypoint -> "waypoint"

let scenario_of_string = function
  | "reachability" -> Ok Reachability
  | "waypoint" -> Ok Waypoint
  | s -> Error (Printf.sprintf "unknown scenario %S (expected reachability|waypoint)" s)

type outcome = {
  o_index : int;
  o_src : string;
  o_dst : string;
  o_ok : bool;
  o_hops : int;
  o_latency_ns : float;
  o_detail : string;
}

type report = {
  r_topo : string;
  r_scenario : scenario;
  r_jobs : int;
  r_pairs : int;
  r_passed : int;
  r_outcomes : outcome array;
  r_registry : Telemetry.Registry.t;
  r_wall_s : float;
}

(* Pair [i] owns virtual time slot [(i+1) * epoch]: wide enough that the
   previous pair's traffic has fully drained on whichever fabric runs it,
   so per-pair timing is a function of the pair index alone. *)
let epoch_ns = 1_000_000.

let initial_ttl = 64L

let probe_bits ~payload_bytes (src : Topology.host) (dst : Topology.host) =
  Packet.serialize
    (Packet.udp_ipv4 ~eth_src:src.Topology.h_mac
       ~eth_dst:(Topology.node_mac src.Topology.h_node)
       ~src:src.Topology.h_ip ~dst:dst.Topology.h_ip ~ttl:initial_ttl ~payload_bytes ())

let pairs_of (topo : Topology.t) =
  let hosts = topo.Topology.hosts in
  let out = ref [] in
  Array.iter
    (fun (s : Topology.host) ->
      Array.iter
        (fun (d : Topology.host) ->
          if s.Topology.h_id <> d.Topology.h_id then out := (s, d) :: !out)
        hosts)
    hosts;
  Array.of_list (List.rev !out)

let path_names topo path =
  List.map (fun id -> topo.Topology.nodes.(id).Topology.n_name) path

let waypoint_of topo path =
  let best = ref (List.hd path) in
  List.iter
    (fun id ->
      if
        Route.tier topo.Topology.nodes.(id).Topology.n_role
        > Route.tier topo.Topology.nodes.(!best).Topology.n_role
      then best := id)
    path;
  topo.Topology.nodes.(!best).Topology.n_name

let run_pair fabric scenario ~payload_bytes i ((src : Topology.host), (dst : Topology.host)) =
  let topo = Fabric.topology fabric in
  Fabric.clear_probes fabric;
  let expected = Route.path topo ~src_edge:src.Topology.h_node ~dst_edge:dst.Topology.h_node in
  let sent_ns = float_of_int (i + 1) *. epoch_ns in
  let id = Fabric.send fabric ~src ~at_ns:sent_ns (probe_bits ~payload_bytes src dst) in
  Fabric.run fabric;
  let trail = Fabric.trail fabric id in
  let hops = List.length trail in
  let mk ok latency detail =
    {
      o_index = i;
      o_src = src.Topology.h_name;
      o_dst = dst.Topology.h_name;
      o_ok = ok;
      o_hops = hops;
      o_latency_ns = latency;
      o_detail = detail;
    }
  in
  match (Fabric.fate fabric id, expected) with
  | Fabric.Lost { l_device; l_reason }, Some _ ->
      mk false nan (Printf.sprintf "lost at %s: %s" l_device l_reason)
  | Fabric.Lost _, None -> mk true nan "no route by design; probe dropped as expected"
  | Fabric.Delivered { d_host; _ }, None ->
      mk false nan
        (Printf.sprintf "delivered to %s despite no route existing"
           topo.Topology.hosts.(d_host).Topology.h_name)
  | Fabric.In_flight, _ -> mk false nan "probe still in flight after run (fabric bug)"
  | Fabric.Delivered { d_host; d_at_ns; d_bits }, Some path ->
      let latency = d_at_ns -. sent_ns in
      let pkt = Packet.parse d_bits in
      let ttl =
        match Packet.find_ipv4 pkt with Some ip -> ip.Packet.Ipv4.ttl | None -> -1L
      in
      let eth_dst =
        match Packet.find_eth pkt with Some e -> e.Packet.Eth.dst | None -> -1L
      in
      let want_ttl = Int64.sub initial_ttl (Int64.of_int (List.length path)) in
      if d_host <> dst.Topology.h_id then
        mk false latency
          (Printf.sprintf "misdelivered to %s"
             topo.Topology.hosts.(d_host).Topology.h_name)
      else if eth_dst <> dst.Topology.h_mac then
        mk false latency (Printf.sprintf "wrong destination MAC 0x%Lx" eth_dst)
      else if ttl <> want_ttl then
        mk false latency (Printf.sprintf "ttl %Ld after %d hops (want %Ld)" ttl hops want_ttl)
      else
        let got_names = List.map (fun h -> topo.Topology.nodes.(h.Fabric.hop_device).Topology.n_name) trail in
        let want_names = path_names topo path in
        match scenario with
        | Waypoint when got_names <> want_names ->
            mk false latency
              (Printf.sprintf "path %s (want %s)"
                 (String.concat ">" got_names)
                 (String.concat ">" want_names))
        | Waypoint ->
            mk true latency
              (Printf.sprintf "ok: via %s, %d hops, ttl %Ld, %.0f ns"
                 (waypoint_of topo path) hops ttl latency)
        | Reachability ->
            mk true latency
              (Printf.sprintf "ok: %d hops, ttl %Ld, %.0f ns" hops ttl latency)

let run ?(jobs = 1) ?(payload_bytes = 26) scenario fabric =
  let t0 = Unix.gettimeofday () in
  let jobs = max 1 jobs in
  let topo = Fabric.topology fabric in
  let pairs = pairs_of topo in
  (* replicas are built here, sequentially, before any traffic runs —
     workers must never replicate a fabric another worker is driving *)
  let fabrics =
    Array.init jobs (fun w -> if w = 0 then fabric else Fabric.replicate fabric)
  in
  let outcomes =
    Par.Pool.with_pool ~jobs (fun pool ->
        Par.Pool.map_chunks pool ~chunk:8
          (fun ~worker i pair -> run_pair fabrics.(worker) scenario ~payload_bytes i pair)
          pairs)
  in
  let registry = Registry.create () in
  Array.iter (fun f -> Registry.merge ~into:registry (Fabric.registry f)) fabrics;
  let passed = Array.fold_left (fun n o -> if o.o_ok then n + 1 else n) 0 outcomes in
  {
    r_topo = topo.Topology.t_name;
    r_scenario = scenario;
    r_jobs = jobs;
    r_pairs = Array.length pairs;
    r_passed = passed;
    r_outcomes = outcomes;
    r_registry = registry;
    r_wall_s = Unix.gettimeofday () -. t0;
  }

let failures r = Array.to_list r.r_outcomes |> List.filter (fun o -> not o.o_ok)

let render ?(max_failures = 10) r =
  let b = Buffer.create 256 in
  let fails = failures r in
  Buffer.add_string b
    (Printf.sprintf "%s: %s: %d/%d pairs ok (jobs=%d, %.2f s)\n" r.r_topo
       (scenario_to_string r.r_scenario) r.r_passed r.r_pairs r.r_jobs r.r_wall_s);
  List.iteri
    (fun i o ->
      if i < max_failures then
        Buffer.add_string b
          (Printf.sprintf "  FAIL %s -> %s: %s\n" o.o_src o.o_dst o.o_detail))
    fails;
  (match List.length fails with
  | n when n > max_failures ->
      Buffer.add_string b (Printf.sprintf "  ... and %d more failures\n" (n - max_failures))
  | _ -> ());
  Buffer.contents b

let render_outcomes r =
  let b = Buffer.create (Array.length r.r_outcomes * 48) in
  Buffer.add_string b
    (Printf.sprintf "# %s %s %d pairs\n" r.r_topo (scenario_to_string r.r_scenario)
       r.r_pairs);
  Array.iter
    (fun o ->
      Buffer.add_string b
        (Printf.sprintf "%04d %s %s -> %s: %s\n" o.o_index
           (if o.o_ok then "PASS" else "FAIL")
           o.o_src o.o_dst o.o_detail))
    r.r_outcomes;
  Buffer.contents b
