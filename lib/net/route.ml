module Entry = P4ir.Entry
module Value = P4ir.Value
module Programs = P4ir.Programs

let bundle () =
  {
    Programs.program = Programs.basic_router.Programs.program;
    entries = [];
    description = "fleet-wide IPv4 LPM router (routes installed per device by Net.Fabric)";
  }

(* adjacency: for every node, (port, peer, peer_port) ascending by port *)
let adjacency (topo : Topology.t) =
  let adj = Array.make (Array.length topo.Topology.nodes) [] in
  Array.iter
    (fun (l : Topology.link) ->
      adj.(l.Topology.l_a) <- (l.Topology.l_a_port, l.Topology.l_b, l.Topology.l_b_port) :: adj.(l.Topology.l_a);
      adj.(l.Topology.l_b) <- (l.Topology.l_b_port, l.Topology.l_a, l.Topology.l_a_port) :: adj.(l.Topology.l_b))
    topo.Topology.links;
  Array.map (List.sort compare) adj

let dists (topo : Topology.t) ~from =
  let adj = adjacency topo in
  let n = Array.length topo.Topology.nodes in
  let d = Array.make n max_int in
  d.(from) <- 0;
  let q = Queue.create () in
  Queue.add from q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (_, v, _) ->
        if d.(v) = max_int then begin
          d.(v) <- d.(u) + 1;
          Queue.add v q
        end)
      adj.(u)
  done;
  d

(* Deterministic ECMP: all neighbors one hop closer, sorted by (peer,
   port), indexed by a hash of (node, dst edge). The same formula decides
   both the installed entry and [path]'s replay of it. *)
let next_hop (topo : Topology.t) ~dists ~node ~dst_edge =
  if node = dst_edge || dists.(node) = max_int then None
  else
    let adj = adjacency topo in
    let cands =
      List.filter (fun (_, peer, _) -> dists.(peer) = dists.(node) - 1) adj.(node)
      |> List.sort (fun (_, p1, pt1) (_, p2, pt2) -> compare (p1, pt1) (p2, pt2))
    in
    match cands with
    | [] -> None
    | _ ->
        let idx = ((node * 31) + dst_edge) mod List.length cands in
        let port, peer, _ = List.nth cands idx in
        Some (port, peer)

let lpm_key prefix len = Entry.lpm (Value.make ~width:32 prefix) len

let nexthop_entry ~port ~dmac =
  Entry.make
    ~keys:[ lpm_key (Int64.of_int 0) 0 ] (* placeholder, callers rebuild keys *)
    ~action:"set_nexthop"
    ~args:[ Value.of_int ~width:9 port; Value.make ~width:48 dmac ]
    ()

let entry ~prefix ~len ~port ~dmac =
  { (nexthop_entry ~port ~dmac) with Entry.keys = [ lpm_key prefix len ] }

let entries_for (topo : Topology.t) id =
  let out = ref [] in
  List.iter
    (fun (e : Topology.node) ->
      match e.Topology.n_subnet with
      | None -> ()
      | Some (prefix, len) ->
          if e.Topology.n_id = id then
            (* terminate the subnet: one /32 per attached host *)
            Array.iter
              (fun (h : Topology.host) ->
                if h.Topology.h_node = id then
                  out :=
                    ( "ipv4_lpm",
                      entry ~prefix:h.Topology.h_ip ~len:32 ~port:h.Topology.h_port
                        ~dmac:h.Topology.h_mac )
                    :: !out)
              topo.Topology.hosts
          else
            let d = dists topo ~from:e.Topology.n_id in
            match next_hop topo ~dists:d ~node:id ~dst_edge:e.Topology.n_id with
            | None -> () (* unreachable edge: no route, LPM default drops *)
            | Some (port, peer) ->
                out :=
                  ("ipv4_lpm", entry ~prefix ~len ~port ~dmac:(Topology.node_mac peer))
                  :: !out)
    (Topology.edges topo);
  List.rev !out

let path (topo : Topology.t) ~src_edge ~dst_edge =
  if src_edge = dst_edge then Some [ src_edge ]
  else
    let d = dists topo ~from:dst_edge in
    if d.(src_edge) = max_int then None
    else
      let rec go acc node =
        if node = dst_edge then Some (List.rev (node :: acc))
        else
          match next_hop topo ~dists:d ~node ~dst_edge with
          | None -> None
          | Some (_, peer) -> go (node :: acc) peer
      in
      go [] src_edge

let tier = function
  | Topology.Edge | Topology.Leaf -> 0
  | Topology.Aggregation -> 1
  | Topology.Core | Topology.Spine -> 2
