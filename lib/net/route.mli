(** Build-time route computation: turn a {!Topology} into per-device
    control-plane state for the fleet-wide router program.

    Every device runs the same IPv4 LPM router (the paper's
    [basic_router] data plane); what differs per device is its
    [ipv4_lpm] table. For each destination edge subnet, each device
    installs one LPM entry pointing at its next hop on a shortest path
    (BFS over the switch graph); the destination edge switch itself
    installs one /32 per attached host. Next-hop selection among
    equal-cost candidates is a deterministic hash of (device, destination
    edge), so traffic spreads across the ECMP fan the way a real fabric's
    hashing would — and {!path} can reproduce the exact device sequence
    any packet will take, which is what the network-level localization
    bisects along. *)

val bundle : unit -> P4ir.Programs.bundle
(** The router program every device runs, with an empty entry list (the
    fabric installs {!entries_for} per device instead). *)

val dists : Topology.t -> from:int -> int array
(** BFS hop counts over the switch graph; [max_int] when unreachable. *)

val next_hop : Topology.t -> dists:int array -> node:int -> dst_edge:int -> (int * int) option
(** [(port, peer)] toward [dst_edge] from [node], given [dists ~from:dst_edge]:
    the deterministically-hashed choice among all neighbors one hop
    closer. [None] when [node] is the destination or it is unreachable. *)

val entries_for : Topology.t -> int -> (string * P4ir.Entry.t) list
(** The [ipv4_lpm] install list for this device: one subnet route per
    remote edge switch, one host /32 per local host. Deterministic
    order (edges ascending, then hosts ascending). *)

val path : Topology.t -> src_edge:int -> dst_edge:int -> int list option
(** The device id sequence a packet injected at [src_edge] traverses to
    reach [dst_edge] under {!entries_for} routing, both endpoints
    included. [None] when no path exists. *)

val tier : Topology.role -> int
(** Edge/Leaf = 0, Aggregation = 1, Core/Spine = 2 — the "how deep into
    the fabric" rank the waypoint scenario asserts over. *)
