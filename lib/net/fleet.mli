(** Fleet-scale validation: generator/checker pairs at the edge hosts of
    a {!Fabric}, sharded across {!Par.Pool} workers, with verdicts and
    per-device telemetry merged centrally.

    Each scenario enumerates every ordered pair of distinct hosts and
    sends one well-formed UDP/IPv4 probe from source to destination:

    - {e Reachability}: the probe must arrive at the destination host,
      TTL decremented once per switch hop, destination MAC rewritten to
      the host's — end-to-end forwarding correctness.
    - {e Waypoint}: additionally, the device trail must equal the exact
      path {!Route.path} predicts — the probe traversed the fabric
      {e through the right devices}, not merely arrived.

    Determinism across [--jobs]: pair [i] is injected at its own virtual
    epoch ([(i+1) × 1 ms] of fabric time), so its latency and verdict
    depend only on the pair index — never on which worker ran it or what
    ran before it on that worker's fabric. Workers claim pairs through
    {!Par.Pool.map_chunks} (results land at input indices) and each
    drives its own {!Fabric.replicate}; a fleet run therefore produces
    byte-identical {!render_outcomes} for any job count, which CI pins
    with [cmp]. *)

type scenario = Reachability | Waypoint

val scenario_to_string : scenario -> string
val scenario_of_string : string -> (scenario, string) result

type outcome = {
  o_index : int;
  o_src : string;  (** source host name *)
  o_dst : string;
  o_ok : bool;
  o_hops : int;  (** switch hops traversed; 0 when nothing was recorded *)
  o_latency_ns : float;  (** injection to host arrival; [nan] when lost *)
  o_detail : string;  (** deterministic one-liner: path / failure reason *)
}

type report = {
  r_topo : string;
  r_scenario : scenario;
  r_jobs : int;
  r_pairs : int;
  r_passed : int;
  r_outcomes : outcome array;  (** indexed by pair order: (src, dst) ascending *)
  r_registry : Telemetry.Registry.t;
      (** fleet counters + per-device metrics from every worker fabric,
          merged under ["<device>/"] prefixes in ascending worker order *)
  r_wall_s : float;
}

val probe_bits :
  payload_bytes:int -> Topology.host -> Topology.host -> Bitutil.Bitstring.t
(** The exact probe a fleet run sends for this (source, destination)
    pair — exposed so {!Localize} re-injects the same packet a failing
    pair reported. *)

val run : ?jobs:int -> ?payload_bytes:int -> scenario -> Fabric.t -> report
(** Run the scenario over [fabric]. [jobs] (default 1) worker domains;
    worker 0 drives [fabric] itself, workers [1..] drive fresh
    {!Fabric.replicate}s (built before the pool starts, so replication
    never races live traffic). [payload_bytes] (default 26) sizes the
    probe's UDP payload. *)

val failures : report -> outcome list
(** Failing outcomes in pair order. *)

val render : ?max_failures:int -> report -> string
(** Human summary: verdict line, pass/fail counts, wall time, the first
    [max_failures] (default 10) failures. *)

val render_outcomes : report -> string
(** One line per pair, deterministic for a given topology + scenario
    (excludes wall time and job count) — what [netdebug net --report]
    writes and the jobs-identity CI check compares with [cmp]. *)
