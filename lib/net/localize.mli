(** Device-within-network fault localization: find {e which device} of a
    fabric is eating traffic, then hand that device to the single-device
    stage localizer for the {e which stage} verdict.

    The procedure mirrors the paper's stage-level algorithm one level
    up. Inject a burst of identical probes at a source edge host and
    check for them at the far edge. If some never arrive, bisect along
    the path {!Route.path} says they must take, using each device's
    ingress counters and span trail (sampling forced to every-packet for
    the burst) as the "did the burst reach this device?" predicate: the
    counters are monotone along the path — every device up to the fault
    saw the full burst, every device past it saw none — so a binary
    search names the last device that received the burst. That device is
    then interrogated in place with {!Netdebug.Localize.locate} (over
    its own management protocol, generator and checker), which names the
    faulty stage — or declares the device healthy in isolation, which
    indicts the link towards its successor instead. *)

type verdict =
  | Healthy  (** the full burst was delivered to the destination host *)
  | No_route  (** the routing layer has no path between these edges *)
  | Device_fault of {
      f_device : string;  (** the localized device *)
      f_verdict : Netdebug.Localize.verdict;  (** its stage-level verdict *)
      f_evidence : Netdebug.Localize.evidence;
    }
  | Link_suspect of { after : string }
      (** this device received and (in isolation) forwards the burst
          correctly, yet its successor never saw it *)

type evidence = {
  n_path : string list;  (** expected device trail, source edge first *)
  n_rx_deltas : (string * int64) list;
      (** per path device: ingress packets counted during the burst *)
  n_span_counts : (string * int) list;
      (** per path device: packet spans recorded during the burst —
          per-hop-timed corroboration of the counters *)
  n_count : int;  (** probes sent *)
  n_delivered : int;  (** probes that reached the destination host *)
  n_bisect_probes : int;
      (** devices whose evidence the bisection actually examined *)
}

val locate :
  ?count:int ->
  Fabric.t ->
  src:Topology.host ->
  dst:Topology.host ->
  verdict * evidence
(** Send [count] (default 16) probes from [src] towards [dst] and
    localize any loss. Probes use the same construction as {!Fleet}, so
    a fleet-reported failing pair can be re-run here verbatim. Span
    sampling on path devices is forced to every-packet for the burst and
    restored afterwards. *)

val verdict_to_string : verdict -> string
