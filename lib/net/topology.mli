(** Typed network topologies: a graph of programmable devices joined by
    virtual links, with end hosts hanging off the edge layer.

    The topology is pure data — {!Fabric} instantiates it with one
    {!Target.Device} per node. Links are undirected and point-to-point:
    each occupies exactly one port on each endpoint, carries a
    propagation delay (added to a packet's wire timestamp when it is
    handed to the peer's ingress) and a nominal bandwidth. Hosts attach
    to a dedicated port of an edge/leaf switch and are where the fleet
    deploys its generator/checker pairs.

    Addressing follows the classic fat-tree convention: every edge
    switch owns an IPv4 /24 ([10.pod.switch.0/24] in a fat-tree,
    [10.leaf.0.0/24] in a leaf-spine) and its hosts live inside it.
    {!Route} turns the graph + subnets into per-device LPM entries.

    Topologies round-trip through JSON ({!to_json} / {!of_json}, HeTu's
    [topology.json] shape adapted to this repo's schema), so externally
    generated fabrics can be validated with the same machinery as the
    built-in generators. *)

type role = Edge | Aggregation | Core | Leaf | Spine

type node = {
  n_id : int;  (** dense, [0 .. nodes-1] *)
  n_name : string;
  n_role : role;
  n_ports : int;
  n_subnet : (int64 * int) option;
      (** (prefix, length): the IPv4 range this edge switch terminates *)
}

type link = {
  l_a : int;
  l_a_port : int;
  l_b : int;
  l_b_port : int;
  l_delay_ns : float;  (** propagation delay, each direction *)
  l_gbps : float;  (** nominal link bandwidth (informational) *)
}

type host = {
  h_id : int;  (** dense, [0 .. hosts-1] *)
  h_name : string;
  h_node : int;  (** the edge switch this host hangs off *)
  h_port : int;  (** ... and the switch port it occupies *)
  h_ip : int64;
  h_mac : int64;
  h_delay_ns : float;  (** host-link propagation delay *)
}

type t = {
  t_name : string;
  nodes : node array;
  links : link array;
  hosts : host array;
}

val fat_tree : ?link_delay_ns:float -> ?host_delay_ns:float -> int -> t
(** [fat_tree k] (k even, >= 2): the canonical k-ary fat-tree — [k] pods
    of [k/2] edge + [k/2] aggregation switches, [(k/2)^2] core switches,
    [k/2] hosts per edge switch; every switch has exactly [k] ports.
    [fat_tree 4] is 20 switches and [k^3/4 = 16] hosts. Default link delay 500 ns
    (≈ 100 m of fibre), host links 100 ns.
    @raise Invalid_argument for odd or non-positive [k]. *)

val leaf_spine :
  ?link_delay_ns:float ->
  ?host_delay_ns:float ->
  ?hosts_per_leaf:int ->
  spines:int ->
  leaves:int ->
  unit ->
  t
(** A two-tier Clos: every leaf uplinks to every spine; [hosts_per_leaf]
    (default 2) hosts per leaf. Leaf [l] owns subnet [10.l.0.0/24]. *)

val single : ?host_delay_ns:float -> hosts:int -> unit -> t
(** One edge switch with [hosts] directly attached hosts — the smallest
    fabric (used by unit tests and the B16 microbench, where the fabric
    overhead around exactly one device forward is what's measured). *)

val validate : t -> (unit, string) result
(** Structural invariants: dense ids, ports in range, every (node, port)
    endpoint used by at most one link or host, link endpoints distinct,
    host IPs inside their edge switch's subnet. The generators always
    produce valid topologies; JSON input goes through this before a
    fabric is built. *)

val peer : t -> node:int -> port:int -> (int * int * link) option
(** The switch on the far side of this port: (peer node, peer port,
    link). [None] when the port faces a host or nothing. O(links) — a
    build-time helper; {!Fabric} precomputes its own port maps. *)

val host_at : t -> node:int -> port:int -> host option
(** The host attached to this switch port, if any. *)

val node_named : t -> string -> node option
val host_of_ip : t -> int64 -> host option

val node_mac : int -> int64
(** The deterministic MAC a switch answers to (next-hop rewrite target). *)

val edges : t -> node list
(** Nodes that terminate a subnet (role Edge or Leaf), ascending id. *)

val max_ports : t -> int
(** The widest node — what the per-device {!Target.Config} must carry. *)

val ip_string : int64 -> string
(** Dotted quad. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
(** [of_json] validates with {!validate} before returning. *)

val to_file : t -> string -> unit
val of_file : string -> (t, string) result

val summary : t -> string
(** One line: name, node/link/host counts. *)
