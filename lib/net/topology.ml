module Json = Obs.Json

type role = Edge | Aggregation | Core | Leaf | Spine

type node = {
  n_id : int;
  n_name : string;
  n_role : role;
  n_ports : int;
  n_subnet : (int64 * int) option;
}

type link = {
  l_a : int;
  l_a_port : int;
  l_b : int;
  l_b_port : int;
  l_delay_ns : float;
  l_gbps : float;
}

type host = {
  h_id : int;
  h_name : string;
  h_node : int;
  h_port : int;
  h_ip : int64;
  h_mac : int64;
  h_delay_ns : float;
}

type t = {
  t_name : string;
  nodes : node array;
  links : link array;
  hosts : host array;
}

let role_name = function
  | Edge -> "edge"
  | Aggregation -> "aggregation"
  | Core -> "core"
  | Leaf -> "leaf"
  | Spine -> "spine"

let role_of_name = function
  | "edge" -> Ok Edge
  | "aggregation" -> Ok Aggregation
  | "core" -> Ok Core
  | "leaf" -> Ok Leaf
  | "spine" -> Ok Spine
  | s -> Error (Printf.sprintf "unknown role %S" s)

let ip a b c d =
  Int64.logor
    (Int64.shift_left (Int64.of_int (a land 0xff)) 24)
    (Int64.of_int (((b land 0xff) lsl 16) lor ((c land 0xff) lsl 8) lor (d land 0xff)))

let ip_string v =
  let b = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  Printf.sprintf "%d.%d.%d.%d" ((b lsr 24) land 0xff) ((b lsr 16) land 0xff)
    ((b lsr 8) land 0xff) (b land 0xff)

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      try
        let p x =
          let v = int_of_string x in
          if v < 0 || v > 255 then failwith "octet" else v
        in
        Ok (ip (p a) (p b) (p c) (p d))
      with _ -> Error (Printf.sprintf "bad IPv4 %S" s))
  | _ -> Error (Printf.sprintf "bad IPv4 %S" s)

(* Deterministic MAC spaces: switches in 0a:50::, hosts in 0a:00:: with
   the IP in the low 32 bits — both derivable by every layer without a
   registry. *)
let node_mac id = Int64.add 0x0A_50_00_00_00_00L (Int64.of_int id)
let host_mac ip = Int64.logor 0x0A_00_00_00_00_00L ip

let default_link_delay = 500.0
let default_host_delay = 100.0

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let mk_host ~id ~name ~node ~port ~hip ~delay =
  {
    h_id = id;
    h_name = name;
    h_node = node;
    h_port = port;
    h_ip = hip;
    h_mac = host_mac hip;
    h_delay_ns = delay;
  }

let fat_tree ?(link_delay_ns = default_link_delay) ?(host_delay_ns = default_host_delay) k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg (Printf.sprintf "Topology.fat_tree: k must be even and >= 2, got %d" k);
  let h = k / 2 in
  let n_edge = k * h and n_agg = k * h in
  let edge p e = (p * h) + e in
  let agg p a = n_edge + (p * h) + a in
  let core a j = n_edge + n_agg + (a * h) + j in
  let nodes =
    Array.init
      (n_edge + n_agg + (h * h))
      (fun id ->
        if id < n_edge then
          let p = id / h and e = id mod h in
          {
            n_id = id;
            n_name = Printf.sprintf "edge-%d-%d" p e;
            n_role = Edge;
            n_ports = k;
            n_subnet = Some (ip 10 p e 0, 24);
          }
        else if id < n_edge + n_agg then
          let p = (id - n_edge) / h and a = (id - n_edge) mod h in
          {
            n_id = id;
            n_name = Printf.sprintf "agg-%d-%d" p a;
            n_role = Aggregation;
            n_ports = k;
            n_subnet = None;
          }
        else
          let c = id - n_edge - n_agg in
          let a = c / h and j = c mod h in
          {
            n_id = id;
            n_name = Printf.sprintf "core-%d-%d" a j;
            n_role = Core;
            n_ports = k;
            n_subnet = None;
          })
  in
  let links = ref [] in
  (* edge(p,e) uplink port h+a <-> agg(p,a) downlink port e *)
  for p = 0 to k - 1 do
    for e = 0 to h - 1 do
      for a = 0 to h - 1 do
        links :=
          {
            l_a = edge p e;
            l_a_port = h + a;
            l_b = agg p a;
            l_b_port = e;
            l_delay_ns = link_delay_ns;
            l_gbps = 10.0;
          }
          :: !links
      done
    done
  done;
  (* agg(p,a) uplink port h+j <-> core(a,j) port p *)
  for p = 0 to k - 1 do
    for a = 0 to h - 1 do
      for j = 0 to h - 1 do
        links :=
          {
            l_a = agg p a;
            l_a_port = h + j;
            l_b = core a j;
            l_b_port = p;
            l_delay_ns = link_delay_ns;
            l_gbps = 10.0;
          }
          :: !links
      done
    done
  done;
  let hosts = ref [] in
  let hid = ref 0 in
  for p = 0 to k - 1 do
    for e = 0 to h - 1 do
      for i = 0 to h - 1 do
        hosts :=
          mk_host ~id:!hid
            ~name:(Printf.sprintf "h-%d-%d-%d" p e i)
            ~node:(edge p e) ~port:i
            ~hip:(ip 10 p e (2 + i))
            ~delay:host_delay_ns
          :: !hosts;
        incr hid
      done
    done
  done;
  {
    t_name = Printf.sprintf "fat-tree:%d" k;
    nodes;
    links = Array.of_list (List.rev !links);
    hosts = Array.of_list (List.rev !hosts);
  }

let leaf_spine ?(link_delay_ns = default_link_delay) ?(host_delay_ns = default_host_delay)
    ?(hosts_per_leaf = 2) ~spines ~leaves () =
  if spines < 1 || leaves < 1 || hosts_per_leaf < 1 then
    invalid_arg "Topology.leaf_spine: spines, leaves and hosts_per_leaf must be >= 1";
  if leaves > 253 || hosts_per_leaf > 253 then
    invalid_arg "Topology.leaf_spine: at most 253 leaves and 253 hosts per leaf";
  let nodes =
    Array.init (leaves + spines) (fun id ->
        if id < leaves then
          {
            n_id = id;
            n_name = Printf.sprintf "leaf-%d" id;
            n_role = Leaf;
            n_ports = hosts_per_leaf + spines;
            n_subnet = Some (ip 10 id 0 0, 24);
          }
        else
          {
            n_id = id;
            n_name = Printf.sprintf "spine-%d" (id - leaves);
            n_role = Spine;
            n_ports = leaves;
            n_subnet = None;
          })
  in
  let links = ref [] in
  for l = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      links :=
        {
          l_a = l;
          l_a_port = hosts_per_leaf + s;
          l_b = leaves + s;
          l_b_port = l;
          l_delay_ns = link_delay_ns;
          l_gbps = 40.0;
        }
        :: !links
    done
  done;
  let hosts = ref [] in
  for l = 0 to leaves - 1 do
    for i = 0 to hosts_per_leaf - 1 do
      hosts :=
        mk_host
          ~id:((l * hosts_per_leaf) + i)
          ~name:(Printf.sprintf "h-%d-%d" l i)
          ~node:l ~port:i
          ~hip:(ip 10 l 0 (2 + i))
          ~delay:host_delay_ns
        :: !hosts
    done
  done;
  {
    t_name = Printf.sprintf "leaf-spine:%dx%d" spines leaves;
    nodes;
    links = Array.of_list (List.rev !links);
    hosts = Array.of_list (List.rev !hosts);
  }

let single ?(host_delay_ns = default_host_delay) ~hosts () =
  if hosts < 1 || hosts > 253 then invalid_arg "Topology.single: 1 <= hosts <= 253";
  {
    t_name = "single";
    nodes =
      [|
        {
          n_id = 0;
          n_name = "sw-0";
          n_role = Edge;
          n_ports = hosts;
          n_subnet = Some (ip 10 0 0 0, 24);
        };
      |];
    links = [||];
    hosts =
      Array.init hosts (fun i ->
          mk_host ~id:i
            ~name:(Printf.sprintf "h-0-%d" i)
            ~node:0 ~port:i
            ~hip:(ip 10 0 0 (2 + i))
            ~delay:host_delay_ns);
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let peer t ~node ~port =
  let rec go i =
    if i >= Array.length t.links then None
    else
      let l = t.links.(i) in
      if l.l_a = node && l.l_a_port = port then Some (l.l_b, l.l_b_port, l)
      else if l.l_b = node && l.l_b_port = port then Some (l.l_a, l.l_a_port, l)
      else go (i + 1)
  in
  go 0

let host_at t ~node ~port =
  Array.to_seq t.hosts |> Seq.find (fun h -> h.h_node = node && h.h_port = port)

let node_named t name = Array.to_seq t.nodes |> Seq.find (fun n -> n.n_name = name)
let host_of_ip t hip = Array.to_seq t.hosts |> Seq.find (fun h -> h.h_ip = hip)

let edges t =
  Array.to_list t.nodes |> List.filter (fun n -> n.n_subnet <> None)

let max_ports t = Array.fold_left (fun acc n -> max acc n.n_ports) 1 t.nodes

let in_subnet hip (prefix, len) =
  let mask =
    if len <= 0 then 0L else Int64.shift_left (-1L) (32 - len) |> Int64.logand 0xFFFFFFFFL
  in
  Int64.logand hip mask = Int64.logand prefix mask

let validate t =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = Array.length t.nodes in
  let* () =
    Array.to_list t.nodes
    |> List.mapi (fun i nd -> (i, nd))
    |> List.fold_left
         (fun acc (i, nd) ->
           let* () = acc in
           if nd.n_id <> i then err "node %s: id %d at index %d" nd.n_name nd.n_id i
           else if nd.n_ports < 1 then err "node %s: no ports" nd.n_name
           else Ok ())
         (Ok ())
  in
  let seen = Hashtbl.create 64 in
  let claim node port what =
    if node < 0 || node >= n then err "%s: no node %d" what node
    else if port < 0 || port >= t.nodes.(node).n_ports then
      err "%s: node %s has no port %d" what t.nodes.(node).n_name port
    else
      match Hashtbl.find_opt seen (node, port) with
      | Some prev -> err "%s: port %d of %s already used by %s" what port t.nodes.(node).n_name prev
      | None ->
          Hashtbl.replace seen (node, port) what;
          Ok ()
  in
  let* () =
    Array.to_list t.links
    |> List.fold_left
         (fun acc l ->
           let* () = acc in
           let what = Printf.sprintf "link %d.%d-%d.%d" l.l_a l.l_a_port l.l_b l.l_b_port in
           if l.l_a = l.l_b then err "%s: self-link" what
           else if l.l_delay_ns < 0.0 then err "%s: negative delay" what
           else
             let* () = claim l.l_a l.l_a_port what in
             claim l.l_b l.l_b_port what)
         (Ok ())
  in
  Array.to_list t.hosts
  |> List.mapi (fun i h -> (i, h))
  |> List.fold_left
       (fun acc (i, h) ->
         let* () = acc in
         if h.h_id <> i then err "host %s: id %d at index %d" h.h_name h.h_id i
         else
           let* () = claim h.h_node h.h_port ("host " ^ h.h_name) in
           match t.nodes.(h.h_node).n_subnet with
           | None -> err "host %s: node %s terminates no subnet" h.h_name t.nodes.(h.h_node).n_name
           | Some subnet ->
               if in_subnet h.h_ip subnet then Ok ()
               else
                 err "host %s: ip %s outside %s's subnet" h.h_name (ip_string h.h_ip)
                   t.nodes.(h.h_node).n_name)
       (Ok ())

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let open Json in
  let node nd =
    Obj
      ([
         ("id", Num (float_of_int nd.n_id));
         ("name", Str nd.n_name);
         ("role", Str (role_name nd.n_role));
         ("ports", Num (float_of_int nd.n_ports));
       ]
      @
      match nd.n_subnet with
      | None -> []
      | Some (p, len) ->
          [ ("subnet", Str (Printf.sprintf "%s/%d" (ip_string p) len)) ])
  in
  let link l =
    Obj
      [
        ("a", Num (float_of_int l.l_a));
        ("a_port", Num (float_of_int l.l_a_port));
        ("b", Num (float_of_int l.l_b));
        ("b_port", Num (float_of_int l.l_b_port));
        ("delay_ns", Num l.l_delay_ns);
        ("gbps", Num l.l_gbps);
      ]
  in
  let host h =
    Obj
      [
        ("id", Num (float_of_int h.h_id));
        ("name", Str h.h_name);
        ("node", Num (float_of_int h.h_node));
        ("port", Num (float_of_int h.h_port));
        ("ip", Str (ip_string h.h_ip));
        ("mac", Num (Int64.to_float h.h_mac));
        ("delay_ns", Num h.h_delay_ns);
      ]
  in
  Obj
    [
      ("name", Str t.t_name);
      ("nodes", Arr (Array.to_list t.nodes |> List.map node));
      ("links", Arr (Array.to_list t.links |> List.map link));
      ("hosts", Arr (Array.to_list t.hosts |> List.map host));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let field name conv what j =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> err "topology JSON: %s needs %S" what name
  in
  let num name what j = field name Json.to_float what j in
  let int name what j =
    let* v = num name what j in
    Ok (int_of_float v)
  in
  let str name what j = field name Json.to_str what j in
  let map_all f l =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* v = f x in
        Ok (v :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  let parse_subnet s =
    match String.index_opt s '/' with
    | None -> err "bad subnet %S" s
    | Some i -> (
        let* p = ip_of_string (String.sub s 0 i) in
        try Ok (p, int_of_string (String.sub s (i + 1) (String.length s - i - 1)))
        with _ -> err "bad subnet %S" s)
  in
  let node j =
    let* id = int "id" "node" j in
    let* name = str "name" "node" j in
    let* role = Result.bind (str "role" "node" j) role_of_name in
    let* ports = int "ports" "node" j in
    let* subnet =
      match Json.member "subnet" j with
      | None | Some Json.Null -> Ok None
      | Some (Json.Str s) -> Result.map Option.some (parse_subnet s)
      | Some _ -> err "node %s: subnet must be a string" name
    in
    Ok { n_id = id; n_name = name; n_role = role; n_ports = ports; n_subnet = subnet }
  in
  let link j =
    let* a = int "a" "link" j in
    let* a_port = int "a_port" "link" j in
    let* b = int "b" "link" j in
    let* b_port = int "b_port" "link" j in
    let* delay = num "delay_ns" "link" j in
    let* gbps = num "gbps" "link" j in
    Ok
      {
        l_a = a;
        l_a_port = a_port;
        l_b = b;
        l_b_port = b_port;
        l_delay_ns = delay;
        l_gbps = gbps;
      }
  in
  let host j =
    let* id = int "id" "host" j in
    let* name = str "name" "host" j in
    let* node = int "node" "host" j in
    let* port = int "port" "host" j in
    let* hip = Result.bind (str "ip" "host" j) ip_of_string in
    let* mac = num "mac" "host" j in
    let* delay = num "delay_ns" "host" j in
    Ok
      {
        h_id = id;
        h_name = name;
        h_node = node;
        h_port = port;
        h_ip = hip;
        h_mac = Int64.of_float mac;
        h_delay_ns = delay;
      }
  in
  let arr name =
    match Option.bind (Json.member name j) Json.to_list with
    | Some l -> Ok l
    | None -> err "topology JSON: missing %S array" name
  in
  let* name = str "name" "topology" j in
  let* nodes = Result.bind (arr "nodes") (map_all node) in
  let* links = Result.bind (arr "links") (map_all link) in
  let* hosts = Result.bind (arr "hosts") (map_all host) in
  let t =
    {
      t_name = name;
      nodes = Array.of_list nodes;
      links = Array.of_list links;
      hosts = Array.of_list hosts;
    }
  in
  let* () = validate t in
  Ok t

let to_file t path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let of_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> Result.bind (Json.of_string (String.trim s)) of_json

let summary t =
  Printf.sprintf "%s: %d devices, %d links, %d hosts" t.t_name (Array.length t.nodes)
    (Array.length t.links) (Array.length t.hosts)
