(* Snapshot streamer: periodically (in virtual time) snapshot a metrics
   Registry and turn the diff against the previous snapshot into a
   [window] — per-window counter deltas, current gauge values, and
   windowed histogram datasets (via Histogram.delta against a retained
   copy). Each window is also rendered as one delta-encoded JSONL line.

   The hot-path entry point is [tick]: one float compare when the
   sampling boundary has not been crossed, so a device inject loop can
   call it per packet (microbenched as B15 against the bare B1 inject). *)

module Registry = Telemetry.Registry
module Histogram = Stats.Histogram

type window = {
  w_seq : int;
  w_t0_ns : float;
  w_t1_ns : float;
  w_counters : (string * int64) list;
  w_gauges : (string * float) list;
  w_hists : (string * Histogram.t) list;
}

type t = {
  registry : Registry.t;
  interval_ns : float;
  keep : int;
  sink : string -> unit;
  buf : Buffer.t;
  prev_counters : (string, int64) Hashtbl.t;
  prev_gauges : (string, float) Hashtbl.t;
  prev_hists : (string, Histogram.t) Hashtbl.t;
  mutable next_ns : float;
  mutable seq : int;
  mutable windows : window list;  (* newest first, capped at [keep] *)
}

let create ?(interval_ns = 100_000.) ?(keep = 64) ?sink registry ~start_ns =
  if interval_ns <= 0. then invalid_arg "Sampler.create: interval_ns must be positive";
  let buf = Buffer.create 4096 in
  let sink = match sink with Some f -> f | None -> Buffer.add_string buf in
  {
    registry;
    interval_ns;
    keep = max 1 keep;
    sink;
    buf;
    prev_counters = Hashtbl.create 64;
    prev_gauges = Hashtbl.create 32;
    prev_hists = Hashtbl.create 16;
    next_ns = start_ns +. interval_ns;
    seq = 0;
    windows = [];
  }

let interval_ns t = t.interval_ns

let counter_delta w name =
  match List.assoc_opt name w.w_counters with Some d -> d | None -> 0L

let gauge_value w name = List.assoc_opt name w.w_gauges

let hist_window w name = List.assoc_opt name w.w_hists

(* One JSONL line per window. Delta encoding: counters appear only when
   they moved, gauges only when they changed (all of them on the first
   window), histograms only when the window saw samples. *)
let line_of_window ~gauges_changed w =
  let num f = Json.Num f in
  let counters =
    List.map (fun (n, d) -> (n, num (Int64.to_float d))) w.w_counters
  in
  let gauges = List.map (fun (n, v) -> (n, num v)) gauges_changed in
  let hists =
    List.map
      (fun (n, h) ->
        ( n,
          Json.Obj
            [
              ("n", num (float_of_int (Histogram.count h)));
              ("sum", num (Histogram.total h));
              ("min", num (Histogram.min_value h));
              ("max", num (Histogram.max_value h));
              ("p50", num (Histogram.percentile h 50.));
              ("p99", num (Histogram.percentile h 99.));
            ] ))
      w.w_hists
  in
  Json.to_string
    (Json.Obj
       [
         ("seq", num (float_of_int w.w_seq));
         ("t0_ns", num w.w_t0_ns);
         ("t1_ns", num w.w_t1_ns);
         ("counters", Json.Obj counters);
         ("gauges", Json.Obj gauges);
         ("hists", Json.Obj hists);
       ])
  ^ "\n"

let sample t ~now_ns =
  let t0 = t.next_ns -. t.interval_ns in
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  let gauges_changed = ref [] in
  List.iter
    (fun (name, _help, value) ->
      match value with
      | Registry.Counter v ->
          let prev =
            match Hashtbl.find_opt t.prev_counters name with Some p -> p | None -> 0L
          in
          Hashtbl.replace t.prev_counters name v;
          let d = Int64.sub v prev in
          if d <> 0L then counters := (name, d) :: !counters
      | Registry.Gauge v ->
          gauges := (name, v) :: !gauges;
          let changed =
            match Hashtbl.find_opt t.prev_gauges name with
            | Some p -> p <> v
            | None -> true
          in
          Hashtbl.replace t.prev_gauges name v;
          if changed then gauges_changed := (name, v) :: !gauges_changed
      | Registry.Histogram h ->
          let win =
            match Hashtbl.find_opt t.prev_hists name with
            | Some prev -> Histogram.delta ~since:prev h
            | None -> Histogram.copy h
          in
          Hashtbl.replace t.prev_hists name (Histogram.copy h);
          if Histogram.count win > 0 then hists := (name, win) :: !hists)
    (Registry.snapshot t.registry);
  let w =
    {
      w_seq = t.seq;
      w_t0_ns = t0;
      w_t1_ns = now_ns;
      (* snapshot is name-sorted; the accumulators reversed it *)
      w_counters = List.rev !counters;
      w_gauges = List.rev !gauges;
      w_hists = List.rev !hists;
    }
  in
  t.seq <- t.seq + 1;
  t.next_ns <- now_ns +. t.interval_ns;
  t.windows <-
    (let ws = w :: t.windows in
     if List.length ws > t.keep then List.filteri (fun i _ -> i < t.keep) ws else ws);
  t.sink (line_of_window ~gauges_changed:(List.rev !gauges_changed) w);
  w

let tick t ~now_ns = if now_ns < t.next_ns then None else Some (sample t ~now_ns)

let windows t = List.rev t.windows

let last_window t = match t.windows with [] -> None | w :: _ -> Some w

let jsonl t = Buffer.contents t.buf

let drain_jsonl t =
  let s = Buffer.contents t.buf in
  Buffer.clear t.buf;
  s
