(** Snapshot streamer: samples a {!Telemetry.Registry} at configurable
    virtual-time intervals into [window]s — per-window counter deltas,
    current gauge values, windowed histogram datasets — and renders each
    window as one delta-encoded JSONL line.

    Counter semantics are per-window deltas (a counter absent from
    [w_counters] did not move). Gauges are instantaneous values at the
    sample point, all of them. Histograms are true window datasets
    ({!Stats.Histogram.delta} against a retained copy), so [p99] of a
    window reflects only that window's samples. *)

type window = {
  w_seq : int;
  w_t0_ns : float;  (** nominal window start (previous boundary) *)
  w_t1_ns : float;  (** actual sample time *)
  w_counters : (string * int64) list;  (** non-zero deltas, name-sorted *)
  w_gauges : (string * float) list;  (** every gauge, name-sorted *)
  w_hists : (string * Stats.Histogram.t) list;
      (** non-empty window datasets, name-sorted *)
}

type t

val create :
  ?interval_ns:float ->
  ?keep:int ->
  ?sink:(string -> unit) ->
  Telemetry.Registry.t ->
  start_ns:float ->
  t
(** [interval_ns] (default 100 us of virtual time) is the sampling period;
    [keep] (default 64) bounds the retained window list; [sink] receives
    each JSONL line as it is produced (default: an internal buffer read
    back with {!jsonl}/{!drain_jsonl} — pass your own to stream to a file
    and keep memory flat on unbounded runs). *)

val tick : t -> now_ns:float -> window option
(** Cheap boundary check — one float compare when no sample is due.
    Crossing the boundary takes one sample covering the whole elapsed
    span (late ticks widen the window rather than backfilling). *)

val sample : t -> now_ns:float -> window
(** Force a sample now, regardless of the boundary. *)

val interval_ns : t -> float

val windows : t -> window list
(** Retained windows, oldest first (at most [keep]). *)

val last_window : t -> window option

val counter_delta : window -> string -> int64
(** 0 when the counter did not move in the window. *)

val gauge_value : window -> string -> float option

val hist_window : window -> string -> Stats.Histogram.t option

val jsonl : t -> string
(** Contents of the internal JSONL buffer (empty when a [sink] was
    supplied at creation). *)

val drain_jsonl : t -> string
(** Like {!jsonl} but also clears the buffer. *)
