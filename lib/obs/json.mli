(** Minimal JSON value type used by the observability plane to emit and
    re-read its own artifacts (snapshot JSONL lines, [/health] documents)
    without an external dependency.

    Numbers are floats: counter values survive exactly up to [2^53]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace); object keys keep their order. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; trailing garbage is an error. Handles
    everything {!to_string} emits (escapes included). *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] on non-objects. *)

val to_float : t -> float option

val to_str : t -> string option

val to_list : t -> t list option

val keys : t -> string list
(** Object keys in order; [[]] on non-objects. *)
