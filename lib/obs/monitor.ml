(* Status monitoring folded into the health plane: run the paper's
   use-case 6 probe (periodic Read_status snapshots while paced live
   traffic flows), synthesize Sampler windows from consecutive
   snapshots, and judge them with the same declarative Health rules the
   soak uses — instead of ad-hoc printing of raw snapshots. *)

module Harness = Netdebug.Harness
module Status = Netdebug.Usecases.Status
module Wire = Netdebug.Wire

type result = {
  mo_snapshots : Wire.status_summary list;
  mo_health : Health.t;
}

(* Counter names the synthesized windows carry; rules address these. *)
let c_in = "status/packets_in"

let c_out = "status/packets_out"

let c_queue_drops = "status/queue_drops"

let c_pipeline_drops = "status/pipeline_drops"

let g_queue_depth = "status/queue_depth"

let default_rules ~max_queue_depth =
  [
    Health.still ~label:"queue-drops" c_queue_drops;
    Health.still ~label:"pipeline-drops" c_pipeline_drops;
    Health.gauge_below ~label:"queue-depth" g_queue_depth max_queue_depth;
  ]

(* Consecutive snapshots bracket a window: cumulative device counters
   become per-window deltas, the queue depth is instantaneous. *)
let windows_of_snapshots snaps =
  let delta f a b = Int64.sub (f b) (f a) in
  let rec go seq acc = function
    | a :: (b :: _ as rest) ->
        let w =
          {
            Sampler.w_seq = seq;
            w_t0_ns = a.Wire.ss_time_ns;
            w_t1_ns = b.Wire.ss_time_ns;
            w_counters =
              List.filter
                (fun (_, d) -> d <> 0L)
                [
                  (c_in, delta (fun s -> s.Wire.ss_packets_in) a b);
                  (c_out, delta (fun s -> s.Wire.ss_packets_out) a b);
                  (c_queue_drops, delta (fun s -> s.Wire.ss_queue_drops) a b);
                  (c_pipeline_drops, delta (fun s -> s.Wire.ss_pipeline_drops) a b);
                ];
            w_gauges = [ (g_queue_depth, float_of_int b.Wire.ss_queue_depth) ];
            w_hists = [];
          }
        in
        go (seq + 1) (w :: acc) rest
    | _ -> List.rev acc
  in
  go 0 [] snaps

let run ?period_packets ?samples ?load ?rules (h : Harness.t) ~background =
  let snaps = Status.monitor ?period_packets ?samples ?load h ~background in
  let max_queue_depth =
    float_of_int (Target.Device.config h.Harness.device).Target.Config.rx_queue_packets
    /. 2.
  in
  let health =
    Health.create (match rules with Some r -> r | None -> default_rules ~max_queue_depth)
  in
  List.iter (fun w -> ignore (Health.observe health w)) (windows_of_snapshots snaps);
  { mo_snapshots = snaps; mo_health = health }

let healthy r = Health.healthy r.mo_health

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "      t_ns        in       out  q_drops  p_drops  depth\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%10.0f %9Ld %9Ld %8Ld %8Ld %6d\n" s.Wire.ss_time_ns
           s.Wire.ss_packets_in s.Wire.ss_packets_out s.Wire.ss_queue_drops
           s.Wire.ss_pipeline_drops s.Wire.ss_queue_depth))
    r.mo_snapshots;
  Buffer.add_string b (Format.asprintf "health: %a\n" Health.pp r.mo_health);
  Buffer.contents b
