(** Continuous profiling hooks: per-window [Gc.quick_stat] deltas
    published as registry gauges ([gc/minor_words_per_window],
    [gc/promoted_words_per_window], [gc/major_words_per_window],
    [gc/minor_collections_per_window], [gc/major_collections_per_window],
    [gc/heap_words]), so the snapshot streamer exports host allocation
    behaviour alongside the device metrics.

    Per-stage cycle-share attribution is the device's half of the
    profiling story: {!Target.Device.create} registers a
    [stage/<name>/cycle_share] gauge per pipeline stage. *)

type t

val attach : Telemetry.Registry.t -> t
(** Register the [gc/*] gauges and take the initial GC snapshot. *)

val tick : t -> unit
(** Advance the window: gauges report deltas between the last two
    [tick]s. Call once per sampling window, before the sample. *)
