(* A dependency-free HTTP/1.0 metrics endpoint over Unix sockets: enough
   protocol to let Prometheus (or curl) scrape GET /metrics and
   GET /health from a running soak/serve loop. Single-threaded and
   poll-driven: the owning loop calls [poll] between windows; each call
   accepts and answers every pending connection without blocking the
   loop when none are waiting.

   Routes are closures evaluated per request, so responses always
   reflect the live registry/health state. *)

type route = { content_type : string; body : unit -> string }

type t = {
  sock : Unix.file_descr;
  port : int;
  routes : (string * route) list;
  mutable served : int;
  mutable closed : bool;
}

let route ~content_type body = { content_type; body }

let create ?(host = "127.0.0.1") ?(port = 0) routes =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 16;
     Unix.set_nonblock sock
   with e ->
     Unix.close sock;
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { sock; port; routes; served = 0; closed = false }

let port t = t.port

let served t = t.served

(* Read until the header terminator (clients send GETs in one segment,
   but don't rely on it), bounded in size and wall time. *)
let read_request fd =
  let deadline = Unix.gettimeofday () +. 2.0 in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let terminated () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec scan i =
      i + 4 <= n && (String.sub s i 4 = "\r\n\r\n" || scan (i + 1))
    in
    (n >= 2 && scan 0) || (n >= 2 && String.length s >= 2 && String.sub s (n - 2) 2 = "\n\n")
  in
  let rec go () =
    if terminated () || Buffer.length buf > 8192 then Buffer.contents buf
    else
      let timeout = deadline -. Unix.gettimeofday () in
      if timeout <= 0. then Buffer.contents buf
      else
        match Unix.select [ fd ] [] [] timeout with
        | [], _, _ -> Buffer.contents buf
        | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> Buffer.contents buf
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> go ()
            | exception Unix.Unix_error (_, _, _) -> Buffer.contents buf)
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write fd b !off (len - !off)
     done
   with Unix.Unix_error (_, _, _) -> ())

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let request_path request =
  match String.index_opt request '\n' with
  | None -> None
  | Some eol -> (
      let line = String.trim (String.sub request 0 eol) in
      match String.split_on_char ' ' line with
      | meth :: path :: _ when String.uppercase_ascii meth = "GET" ->
          (* strip any query string *)
          Some
            (match String.index_opt path '?' with
            | Some q -> String.sub path 0 q
            | None -> path)
      | _ -> None)

let handle t fd =
  let request = read_request fd in
  let reply =
    match request_path request with
    | None ->
        response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
          "only GET is supported\n"
    | Some path -> (
        match List.assoc_opt path t.routes with
        | Some r -> (
            match r.body () with
            | body -> response ~status:"200 OK" ~content_type:r.content_type body
            | exception e ->
                response ~status:"500 Internal Server Error" ~content_type:"text/plain"
                  (Printexc.to_string e ^ "\n"))
        | None ->
            response ~status:"404 Not Found" ~content_type:"text/plain"
              (Printf.sprintf "no route for %s; try %s\n" path
                 (String.concat " " (List.map fst t.routes))))
  in
  write_all fd reply;
  t.served <- t.served + 1

let poll ?(max_requests = 32) t =
  if t.closed then 0
  else begin
    let n = ref 0 in
    (try
       while !n < max_requests do
         let fd, _addr = Unix.accept t.sock in
         (try
            Unix.clear_nonblock fd;
            handle t fd
          with _ -> ());
         (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
         incr n
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error (Unix.EINTR, _, _) -> ());
    !n
  end

let wait ?(timeout_s = 1.0) t =
  if t.closed then 0
  else
    match Unix.select [ t.sock ] [] [] timeout_s with
    | [], _, _ -> 0
    | _ -> poll t

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.sock with Unix.Unix_error (_, _, _) -> ()
  end
