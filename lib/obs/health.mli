(** Rolling-window health evaluation over {!Sampler} windows.

    A health instance holds declarative rules; {!observe} evaluates them
    against each window as it is produced, accumulating typed firing
    evidence. All rates are per {e virtual} second, so verdicts for a
    seeded run are deterministic. *)

type rule_kind =
  | Counter_still of string
      (** the counter must never move (verdict drift, assert failures) *)
  | Rate_below of string * float
      (** counter rate per virtual second must stay at or under the
          bound; a bound of 0 fires on any increment *)
  | Gauge_below of string * float  (** instantaneous gauge bound *)
  | P99_below of string * float
      (** window p99 of a histogram must stay at or under the ceiling *)
  | Ewma_band of { counter : string; alpha : float; band : float; warmup : int }
      (** EWMA-baseline anomaly detection on the counter's per-window
          rate: once [warmup] windows have seeded the baseline, a window
          whose rate deviates more than [band] (fractional) from the
          baseline fires; anomalous windows do not update the baseline *)

type rule = { hr_label : string; hr_kind : rule_kind }

val still : label:string -> string -> rule

val rate_below : label:string -> string -> float -> rule

val gauge_below : label:string -> string -> float -> rule

val p99_below : label:string -> string -> float -> rule

val ewma_band : ?alpha:float -> ?warmup:int -> label:string -> string -> float -> rule
(** [alpha] defaults to 0.3, [warmup] to 5 windows. *)

type firing = {
  fg_rule : string;
  fg_window : int;
  fg_t1_ns : float;
  fg_observed : float;
  fg_limit : float;
  fg_detail : string;
}

type verdict = Healthy | Unhealthy of firing list

type t

val create : rule list -> t

val observe : t -> Sampler.window -> firing list
(** Evaluate every rule against the window; returns (and records) the
    rules that fired on it. *)

val verdict : t -> verdict
(** Healthy iff no rule has fired on any observed window. *)

val healthy : t -> bool

val firings : t -> firing list
(** All firings so far, oldest first. *)

val windows_seen : t -> int

val to_json : t -> string
(** The [/health] document: verdict, windows seen, per-rule firing counts
    and last observations, plus the first 32 firings with evidence.
    Deterministic for a seeded run. *)

val pp : Format.formatter -> t -> unit

val pp_firing : Format.formatter -> firing -> unit
