(** Status monitoring (the paper's use-case 6) folded into the health
    plane: periodic [Read_status] snapshots taken while paced live
    traffic flows are synthesized into {!Sampler.window}s (cumulative
    counters become per-window deltas under [status/*] names) and judged
    by {!Health} rules instead of printed raw. *)

type result = {
  mo_snapshots : Netdebug.Wire.status_summary list;
  mo_health : Health.t;
}

val default_rules : max_queue_depth:float -> Health.rule list
(** queue-drops still, pipeline-drops still, queue depth bound. *)

val windows_of_snapshots :
  Netdebug.Wire.status_summary list -> Sampler.window list
(** Each consecutive snapshot pair becomes one window carrying
    [status/packets_in]/[status/packets_out]/[status/queue_drops]/
    [status/pipeline_drops] deltas and a [status/queue_depth] gauge. *)

val run :
  ?period_packets:int ->
  ?samples:int ->
  ?load:float ->
  ?rules:Health.rule list ->
  Netdebug.Harness.t ->
  background:Bitutil.Bitstring.t ->
  result
(** Drive {!Netdebug.Usecases.Status.monitor} with the same knobs
    ([samples] snapshots every [period_packets] packets at [load] of
    line rate) and evaluate the synthesized windows. [rules] defaults to
    {!default_rules} with half the RX ring as the depth bound. *)

val healthy : result -> bool

val render : result -> string
(** Snapshot table plus the health verdict line. *)
