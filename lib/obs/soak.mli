(** Heavy-traffic soak: sustained multi-flow background traffic
    (DNS/HTTP-like header mixes rotating over routed prefixes) paced at
    millions of packets per virtual second through a deployed harness,
    with the generator/checker validation loop running concurrently, the
    {!Sampler} streaming every window and a {!Health} evaluator judging
    them.

    Deterministic from the seed on the virtual-time side (flow pool,
    pacing, ingress ports, validation vectors, health verdict); wall
    clock appears only in the report. *)

type cfg = {
  sk_budget : int;  (** background packets to inject *)
  sk_seed : int;
  sk_rate_mpps : float;  (** offered background rate, virtual Mpkt/s *)
  sk_window_ns : float;  (** sampling / health window, virtual ns *)
  sk_validations_per_window : int;
  sk_min_rate_mpps : float;  (** acceptance floor on the sustained rate *)
  sk_p99_ceiling_ns : float;  (** pipeline/latency_ns window-p99 bound *)
  sk_max_queue_depth : float;  (** rxq/depth bound *)
}

val default_cfg : cfg
(** 100k packets at 2 Mpkt/s offered, 100 us windows, one validation per
    window, 1 Mpkt/s floor. *)

val default_rules : cfg -> Health.rule list
(** verdict-drift still, checker-asserts still, fault-drops still,
    rx tail-drop rate 0, rxq depth bound, pipeline p99 ceiling, and an
    EWMA anomaly band on the tx/emitted rate. *)

val flow_pool : seed:int -> Bitutil.Bitstring.t array
(** 256 pre-rendered packets of the traffic mix (DNS query/response,
    HTTP SYN/ACK/request/payload over UDP/TCP/IPv4), destinations
    rotating over the basic_router prefixes. *)

type report = {
  so_program : string;
  so_packets : int;
  so_windows : int;
  so_validated : int;
  so_drift : int;
  so_virtual_s : float;
  so_rate_mpps : float;
  so_min_rate_mpps : float;
  so_wall_s : float;
  so_healthy : bool;
  so_firings : Health.firing list;
  so_mismatch_examples : string list;  (** first 5 drift descriptions *)
  so_health_json : string;
  so_jsonl : string;  (** empty when a custom sink consumed the lines *)
  so_prometheus : string;
}

val run :
  ?cfg:cfg ->
  ?rules:Health.rule list ->
  ?health:Health.t ->
  ?sink:(string -> unit) ->
  ?on_window:(Sampler.window -> unit) ->
  Netdebug.Harness.t ->
  report
(** Drive the soak on an already-deployed harness. [health] overrides
    [rules] overrides {!default_rules} (pass [health] to share the live
    evaluator with an HTTP endpoint). [sink] streams JSONL lines as they
    are produced instead of buffering them into the report. [on_window]
    runs after each window's sample+health evaluation — the serve loop
    polls its HTTP listener there. *)

val rate_ok : report -> bool

val exit_ok : report -> bool
(** Healthy verdict {e and} sustained rate at or above the floor — the
    CLI exit-code gate. *)

val render : report -> string

val write_artifacts : report -> dir:string -> string list
(** Write [soak.jsonl], [health.json] and [metrics.prom] into [dir]
    (created if missing); returns the paths. *)
