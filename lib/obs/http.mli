(** Dependency-free HTTP/1.0 endpoint over Unix sockets, serving live
    Prometheus text exposition and the JSON health document from a
    running soak/serve loop.

    Single-threaded and poll-driven: the owning loop calls {!poll}
    between sampling windows. Each poll accepts and answers every
    connection already pending, and returns immediately when none are. *)

type t

type route

val route : content_type:string -> (unit -> string) -> route
(** Body closures are evaluated per request, so responses reflect live
    state. An exception inside one becomes a 500. *)

val create : ?host:string -> ?port:int -> (string * route) list -> t
(** Bind and listen on [host] (default 127.0.0.1) : [port]. Port 0
    (the default) picks an ephemeral port — read it back with {!port}.
    The association list maps exact paths (["/metrics"]) to routes;
    query strings are stripped before matching, unknown paths get a 404
    listing the routes, non-GET methods a 405. *)

val port : t -> int

val poll : ?max_requests:int -> t -> int
(** Serve every pending connection (up to [max_requests], default 32)
    without blocking; returns the number served. *)

val wait : ?timeout_s:float -> t -> int
(** Block up to [timeout_s] (default 1 s) for a connection, then {!poll}.
    For dedicated serve loops with nothing else to do. *)

val served : t -> int
(** Total requests answered since creation. *)

val close : t -> unit
(** Close the listening socket; subsequent polls return 0. *)
