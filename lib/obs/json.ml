(* A deliberately small JSON value type with a renderer and a recursive
   descent parser. The observability plane emits and re-reads its own
   artifacts (snapshot JSONL, /health documents) and the test-suite
   round-trips them; none of that warrants an external dependency.

   Numbers are floats: int64 counters survive exactly up to 2^53, far
   beyond anything a soak run produces. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- rendering ---------------- *)

let escape = Telemetry.Export.json_escape

let add_num b (f : float) =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> add_num b f
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char b '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char b '\012';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* sufficient for our own artifacts: control chars only *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "empty input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr l -> Some l | _ -> None

let keys = function Obj kvs -> List.map fst kvs | _ -> []
