(* The heavy-traffic soak: sustained multi-flow background traffic
   (DNS/HTTP-like header mixes) paced at millions of packets per virtual
   second through a deployed device, with the generator/checker
   validation loop running concurrently against the spec oracle, the
   snapshot streamer sampling every window, and the health evaluator
   judging each window as it closes.

   Everything virtual-time-side is deterministic from the seed: the flow
   pool, ingress ports, pacing, validation vectors and therefore the
   health verdict. Wall-clock numbers appear only in the report text. *)

module Prng = Bitutil.Prng
module Counter = Stats.Counter
module Registry = Telemetry.Registry
module Device = Target.Device
module Harness = Netdebug.Harness
module Functional = Netdebug.Usecases.Functional
module P = Packet

type cfg = {
  sk_budget : int;  (* background packets to inject *)
  sk_seed : int;
  sk_rate_mpps : float;  (* offered background rate, virtual Mpkt/s *)
  sk_window_ns : float;  (* sampling / health window, virtual ns *)
  sk_validations_per_window : int;
  sk_min_rate_mpps : float;  (* acceptance floor on the sustained virtual rate *)
  sk_p99_ceiling_ns : float;
  sk_max_queue_depth : float;
}

let default_cfg =
  {
    sk_budget = 100_000;
    sk_seed = 1;
    sk_rate_mpps = 2.0;
    sk_window_ns = 100_000.;
    sk_validations_per_window = 1;
    sk_min_rate_mpps = 1.0;
    sk_p99_ceiling_ns = 5_000.;
    sk_max_queue_depth = 512.;
  }

let default_rules cfg =
  [
    Health.still ~label:"verdict-drift" "soak/verdict_drift";
    Health.still ~label:"checker-asserts" "assert/failed";
    Health.still ~label:"fault-drops" "drop/fault";
    Health.rate_below ~label:"rx-tail-drop" "drop/queue" 0.;
    Health.gauge_below ~label:"rxq-depth" "rxq/depth" cfg.sk_max_queue_depth;
    Health.p99_below ~label:"pipeline-p99" "pipeline/latency_ns" cfg.sk_p99_ceiling_ns;
    Health.ewma_band ~label:"tx-rate-anomaly" "tx/emitted" 0.5;
  ]

(* ------------------------------------------------------------------ *)
(* Traffic model                                                       *)
(* ------------------------------------------------------------------ *)

(* Destinations rotate over basic_router's routed prefixes so an LPM
   data plane spreads the mix across its ports; any other program just
   sees well-formed IPv4. Sources live in 172.16/12. *)
let dst_prefixes = [| 0x0A000000L; 0x0A010000L; 0xC0A80000L |]

let flow_pool ~seed =
  let prng = Prng.create (seed lxor 0x50_4F_4F_4C (* "POOL" *)) in
  Array.init 256 (fun _ ->
      let dst =
        Int64.logor (Prng.choose prng dst_prefixes) (Int64.of_int (Prng.int prng 0x10000))
      in
      let src = Int64.logor 0xAC100000L (Int64.of_int (Prng.int prng 0x100000)) in
      let eph = Int64.of_int (1024 + Prng.int prng 60000) in
      let pkt =
        match Prng.int prng 100 with
        | k when k < 25 ->
            (* DNS query: small UDP to port 53 *)
            P.udp_ipv4 ~src ~dst ~src_port:eph ~dst_port:53L ~payload_bytes:31 ()
        | k when k < 45 ->
            (* DNS response: mid-size UDP from port 53 *)
            P.udp_ipv4 ~src ~dst ~src_port:53L ~dst_port:eph
              ~payload_bytes:(64 + Prng.int prng 120)
              ()
        | k when k < 53 ->
            (* HTTP handshake: TCP SYN to port 80 *)
            P.tcp_ipv4 ~src ~dst ~src_port:eph ~dst_port:80L ~flags:0x002L ()
        | k when k < 61 ->
            (* HTTP handshake: bare ACK *)
            P.tcp_ipv4 ~src ~dst ~src_port:eph ~dst_port:80L ~flags:0x010L ()
        | k when k < 70 ->
            (* HTTP request: PSH|ACK *)
            P.tcp_ipv4 ~src ~dst ~src_port:eph ~dst_port:80L ~flags:0x018L ()
        | _ ->
            (* HTTP payload segment back from port 80 *)
            P.udp_ipv4 ~src ~dst ~src_port:80L ~dst_port:eph
              ~payload_bytes:(256 + Prng.int prng 512)
              ()
      in
      P.serialize pkt)

(* ------------------------------------------------------------------ *)
(* The soak loop                                                       *)
(* ------------------------------------------------------------------ *)

type report = {
  so_program : string;
  so_packets : int;
  so_windows : int;
  so_validated : int;
  so_drift : int;
  so_virtual_s : float;
  so_rate_mpps : float;  (* sustained virtual rate, background packets *)
  so_min_rate_mpps : float;
  so_wall_s : float;
  so_healthy : bool;
  so_firings : Health.firing list;
  so_mismatch_examples : string list;
  so_health_json : string;
  so_jsonl : string;  (* empty when a custom sink consumed the lines *)
  so_prometheus : string;
}

let rate_ok r = r.so_rate_mpps >= r.so_min_rate_mpps

let exit_ok r = r.so_healthy && rate_ok r

let run ?(cfg = default_cfg) ?rules ?health ?sink ?on_window (h : Harness.t) =
  if cfg.sk_budget <= 0 then invalid_arg "Soak.run: budget must be positive";
  if cfg.sk_rate_mpps <= 0. then invalid_arg "Soak.run: rate must be positive";
  let device = h.Harness.device in
  let registry = Device.metrics device in
  let ports = (Device.config device).Target.Config.ports in
  let c_bg =
    Registry.counter registry ~help:"background soak packets offered to the device"
      "soak/background"
  in
  let c_ok =
    Registry.counter registry
      ~help:"concurrent validation vectors whose verdict matched the spec oracle"
      "soak/validated"
  in
  let c_drift =
    Registry.counter registry
      ~help:"concurrent validation vectors whose verdict diverged from the spec oracle"
      "soak/verdict_drift"
  in
  let health =
    match health with
    | Some hl -> hl
    | None -> Health.create (match rules with Some r -> r | None -> default_rules cfg)
  in
  let profile = Profile.attach registry in
  let sampler =
    Sampler.create ~interval_ns:cfg.sk_window_ns ?sink registry
      ~start_ns:(Device.now_ns device)
  in
  let pool = flow_pool ~seed:cfg.sk_seed in
  let prng = Prng.create cfg.sk_seed in
  let oracle = h.Harness.bundle in
  let oracle_rt = Functional.oracle_runtime oracle in
  let interval_ns = 1000. /. cfg.sk_rate_mpps in
  let per_window = max 1 (int_of_float (cfg.sk_window_ns /. interval_ns)) in
  let t0 = Device.now_ns device in
  let wall0 = Unix.gettimeofday () in
  let injected = ref 0 in
  let validated = ref 0 in
  let vec_idx = ref 0 in
  let mismatches = ref [] in
  let windows = ref 0 in
  (* background pacing cursor; validation bursts quiesce the device and
     advance its clock, so the cursor must never fall behind it *)
  let sched = ref t0 in
  while !injected < cfg.sk_budget do
    let batch = min per_window (cfg.sk_budget - !injected) in
    sched := Float.max !sched (Device.now_ns device);
    for _ = 1 to batch do
      sched := !sched +. interval_ns;
      let pkt = Prng.choose prng pool in
      ignore (Device.inject device ~source:(Device.External (Prng.int prng ports)) ~at_ns:!sched pkt);
      Counter.incr c_bg;
      incr injected
    done;
    if cfg.sk_validations_per_window > 0 then begin
      (* the window's validation burst as one batch: direct agent handles,
         one quiesce — the verdicts are those of per-vector check_vector *)
      let pkts =
        Array.init cfg.sk_validations_per_window (fun k ->
            pool.((!vec_idx + k) mod Array.length pool))
      in
      let verdicts =
        Functional.check_batch ~base:(!vec_idx + 1) oracle oracle_rt h pkts
      in
      vec_idx := !vec_idx + Array.length pkts;
      validated := !validated + Array.length pkts;
      Array.iter
        (function
          | Some mm ->
              Counter.incr c_drift;
              if List.length !mismatches < 5 then
                mismatches :=
                  Printf.sprintf "vector %d: expected %s, got %s" mm.Functional.mm_index
                    mm.Functional.mm_expected mm.Functional.mm_got
                  :: !mismatches
          | None -> Counter.incr c_ok)
        verdicts
    end;
    Profile.tick profile;
    let w = Sampler.sample sampler ~now_ns:(Device.now_ns device) in
    ignore (Health.observe health w);
    incr windows;
    match on_window with Some f -> f w | None -> ()
  done;
  Device.quiesce device;
  let virtual_s = (Device.now_ns device -. t0) /. 1e9 in
  let wall_s = Unix.gettimeofday () -. wall0 in
  {
    so_program = oracle.P4ir.Programs.program.P4ir.Ast.p_name;
    so_packets = !injected;
    so_windows = !windows;
    so_validated = !validated;
    so_drift = Int64.to_int (Counter.get c_drift);
    so_virtual_s = virtual_s;
    so_rate_mpps =
      (if virtual_s > 0. then float_of_int !injected /. virtual_s /. 1e6 else 0.);
    so_min_rate_mpps = cfg.sk_min_rate_mpps;
    so_wall_s = wall_s;
    so_healthy = Health.healthy health;
    so_firings = Health.firings health;
    so_mismatch_examples = List.rev !mismatches;
    so_health_json = Health.to_json health;
    so_jsonl = Sampler.jsonl sampler;
    so_prometheus = Telemetry.Export.prometheus registry;
  }

(* ------------------------------------------------------------------ *)
(* Rendering and artifacts                                             *)
(* ------------------------------------------------------------------ *)

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "soak %s: %d background packets over %d windows\n" r.so_program
       r.so_packets r.so_windows);
  Buffer.add_string b
    (Printf.sprintf "  virtual: %.3f ms sustained %.2f Mpkt/s (floor %.2f) -> %s\n"
       (r.so_virtual_s *. 1e3) r.so_rate_mpps r.so_min_rate_mpps
       (if rate_ok r then "ok" else "TOO SLOW"));
  Buffer.add_string b
    (Printf.sprintf "  wall:    %.2f s (%.0f kpkt/s)\n" r.so_wall_s
       (if r.so_wall_s > 0. then float_of_int r.so_packets /. r.so_wall_s /. 1e3 else 0.));
  Buffer.add_string b
    (Printf.sprintf "  validation: %d vectors, %d drift\n" r.so_validated r.so_drift);
  Buffer.add_string b
    (Printf.sprintf "  health: %s (%d firings)\n"
       (if r.so_healthy then "healthy" else "UNHEALTHY")
       (List.length r.so_firings));
  List.iteri
    (fun i f ->
      if i < 8 then
        Buffer.add_string b (Format.asprintf "    %a\n" Health.pp_firing f))
    r.so_firings;
  if List.length r.so_firings > 8 then
    Buffer.add_string b (Printf.sprintf "    ... %d more\n" (List.length r.so_firings - 8));
  List.iter (fun m -> Buffer.add_string b (Printf.sprintf "    drift %s\n" m))
    r.so_mismatch_examples;
  Buffer.contents b

let write_artifacts r ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  [
    write "soak.jsonl" r.so_jsonl;
    write "health.json" r.so_health_json;
    write "metrics.prom" r.so_prometheus;
  ]
