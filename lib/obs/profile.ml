(* Continuous profiling hooks: per-window Gc.quick_stat deltas published
   as first-class registry gauges, so the snapshot streamer exports the
   host's allocation behaviour alongside the device metrics it samples.
   (The companion per-stage cycle-share attribution lives in
   Target.Device, which registers a stage/<name>/cycle_share gauge per
   pipeline stage.)

   [tick] is called once per window by the soak/serve loops; gauges read
   the deltas computed by the most recent tick. *)

type t = {
  mutable last : Gc.stat;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable major_words : float;
  mutable minor_collections : float;
  mutable major_collections : float;
  mutable heap_words : float;
}

let attach registry =
  let s = Gc.quick_stat () in
  let t =
    {
      last = s;
      minor_words = 0.;
      promoted_words = 0.;
      major_words = 0.;
      minor_collections = 0.;
      major_collections = 0.;
      heap_words = float_of_int s.Gc.heap_words;
    }
  in
  let gauge name help read = Telemetry.Registry.gauge registry ~help ("gc/" ^ name) read in
  gauge "minor_words_per_window" "words allocated in the minor heap during the last window"
    (fun () -> t.minor_words);
  gauge "promoted_words_per_window" "words promoted to the major heap during the last window"
    (fun () -> t.promoted_words);
  gauge "major_words_per_window" "words allocated in the major heap during the last window"
    (fun () -> t.major_words);
  gauge "minor_collections_per_window" "minor GC cycles during the last window" (fun () ->
      t.minor_collections);
  gauge "major_collections_per_window" "major GC cycles during the last window" (fun () ->
      t.major_collections);
  gauge "heap_words" "current major heap size in words" (fun () -> t.heap_words);
  t

let tick t =
  let s = Gc.quick_stat () in
  let prev = t.last in
  t.minor_words <- s.Gc.minor_words -. prev.Gc.minor_words;
  t.promoted_words <- s.Gc.promoted_words -. prev.Gc.promoted_words;
  t.major_words <- s.Gc.major_words -. prev.Gc.major_words;
  t.minor_collections <-
    float_of_int (s.Gc.minor_collections - prev.Gc.minor_collections);
  t.major_collections <-
    float_of_int (s.Gc.major_collections - prev.Gc.major_collections);
  t.heap_words <- float_of_int s.Gc.heap_words;
  t.last <- s
