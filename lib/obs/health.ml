(* Rolling-window health evaluation: declarative rules over Sampler
   windows, a typed verdict, and firing evidence. Rules are evaluated
   once per window; a run is Healthy iff no rule ever fired.

   Rates are per *virtual* second — the device clock, not wall time — so
   verdicts are deterministic for a seeded run. *)

module Histogram = Stats.Histogram

type rule_kind =
  | Counter_still of string
      (* the counter must not move at all (verdict drift, assert failures) *)
  | Rate_below of string * float
      (* counter rate per virtual second must stay strictly under the bound;
         a bound of 0 therefore fires on any increment *)
  | Gauge_below of string * float
  | P99_below of string * float
      (* window p99 of a histogram must stay at or under the ceiling *)
  | Ewma_band of { counter : string; alpha : float; band : float; warmup : int }
      (* anomaly detection: the counter's per-window rate must stay within
         [band] (fractional) of its EWMA baseline once [warmup] windows
         have seeded the baseline *)

type rule = { hr_label : string; hr_kind : rule_kind }

let still ~label counter = { hr_label = label; hr_kind = Counter_still counter }

let rate_below ~label counter per_s = { hr_label = label; hr_kind = Rate_below (counter, per_s) }

let gauge_below ~label gauge bound = { hr_label = label; hr_kind = Gauge_below (gauge, bound) }

let p99_below ~label hist ceiling = { hr_label = label; hr_kind = P99_below (hist, ceiling) }

let ewma_band ?(alpha = 0.3) ?(warmup = 5) ~label counter band =
  if band <= 0. then invalid_arg "Health.ewma_band: band must be positive";
  { hr_label = label; hr_kind = Ewma_band { counter; alpha; band; warmup } }

type firing = {
  fg_rule : string;
  fg_window : int;
  fg_t1_ns : float;
  fg_observed : float;
  fg_limit : float;
  fg_detail : string;
}

type verdict = Healthy | Unhealthy of firing list

type rule_state = {
  rule : rule;
  mutable rs_firings : int;
  mutable rs_last_observed : float;
  mutable rs_ewma : float;
  mutable rs_seen : int;  (* windows fed into the EWMA baseline *)
}

type t = {
  rules : rule_state list;
  mutable windows_seen : int;
  mutable firings : firing list;  (* newest first *)
}

let create rules =
  {
    rules =
      List.map
        (fun rule ->
          { rule; rs_firings = 0; rs_last_observed = 0.; rs_ewma = 0.; rs_seen = 0 })
        rules;
    windows_seen = 0;
    firings = [];
  }

let window_seconds (w : Sampler.window) =
  let dt = (w.Sampler.w_t1_ns -. w.Sampler.w_t0_ns) /. 1e9 in
  if dt > 0. then dt else 1e-9

let eval_rule st (w : Sampler.window) =
  let fire ~observed ~limit detail =
    st.rs_firings <- st.rs_firings + 1;
    Some
      {
        fg_rule = st.rule.hr_label;
        fg_window = w.Sampler.w_seq;
        fg_t1_ns = w.Sampler.w_t1_ns;
        fg_observed = observed;
        fg_limit = limit;
        fg_detail = detail;
      }
  in
  match st.rule.hr_kind with
  | Counter_still name ->
      let d = Int64.to_float (Sampler.counter_delta w name) in
      st.rs_last_observed <- d;
      if d <> 0. then
        fire ~observed:d ~limit:0.
          (Printf.sprintf "%s moved by %.0f in window %d" name d w.Sampler.w_seq)
      else None
  | Rate_below (name, per_s) ->
      let rate = Int64.to_float (Sampler.counter_delta w name) /. window_seconds w in
      st.rs_last_observed <- rate;
      if rate > per_s then
        fire ~observed:rate ~limit:per_s
          (Printf.sprintf "%s at %.1f/s exceeds %.1f/s" name rate per_s)
      else None
  | Gauge_below (name, bound) -> (
      match Sampler.gauge_value w name with
      | None -> None
      | Some v ->
          st.rs_last_observed <- v;
          if v > bound then
            fire ~observed:v ~limit:bound
              (Printf.sprintf "%s at %g exceeds %g" name v bound)
          else None)
  | P99_below (name, ceiling) -> (
      match Sampler.hist_window w name with
      | None -> None
      | Some h ->
          let p99 = Histogram.percentile h 99. in
          st.rs_last_observed <- p99;
          if p99 > ceiling then
            fire ~observed:p99 ~limit:ceiling
              (Printf.sprintf "%s window p99 %.1f exceeds %.1f (n=%d)" name p99 ceiling
                 (Histogram.count h))
          else None)
  | Ewma_band { counter; alpha; band; warmup } ->
      let rate = Int64.to_float (Sampler.counter_delta w counter) /. window_seconds w in
      st.rs_last_observed <- rate;
      let result =
        if st.rs_seen < warmup then None
        else begin
          (* floor the baseline so a quiet counter cannot divide by zero *)
          let baseline = Float.max st.rs_ewma 1.0 in
          let dev = Float.abs (rate -. st.rs_ewma) /. baseline in
          if dev > band then
            fire ~observed:rate ~limit:band
              (Printf.sprintf "%s rate %.1f/s deviates %.0f%% from baseline %.1f/s" counter
                 rate (dev *. 100.) st.rs_ewma)
          else None
        end
      in
      (* anomalous windows do not poison the baseline *)
      if result = None then begin
        st.rs_ewma <-
          (if st.rs_seen = 0 then rate else (alpha *. rate) +. ((1. -. alpha) *. st.rs_ewma));
        st.rs_seen <- st.rs_seen + 1
      end;
      result

let observe t w =
  t.windows_seen <- t.windows_seen + 1;
  let fired = List.filter_map (fun st -> eval_rule st w) t.rules in
  t.firings <- List.rev_append fired t.firings;
  fired

let firings t = List.rev t.firings

let verdict t = match t.firings with [] -> Healthy | fs -> Unhealthy (List.rev fs)

let healthy t = t.firings = []

let windows_seen t = t.windows_seen

let max_firings_in_json = 32

let to_json t =
  let num f = Json.Num f in
  let rules =
    List.map
      (fun st ->
        Json.Obj
          [
            ("rule", Json.Str st.rule.hr_label);
            ("firings", num (float_of_int st.rs_firings));
            ("last_observed", num st.rs_last_observed);
          ])
      t.rules
  in
  let all = firings t in
  let shown = List.filteri (fun i _ -> i < max_firings_in_json) all in
  let firing_objs =
    List.map
      (fun f ->
        Json.Obj
          [
            ("rule", Json.Str f.fg_rule);
            ("window", num (float_of_int f.fg_window));
            ("t1_ns", num f.fg_t1_ns);
            ("observed", num f.fg_observed);
            ("limit", num f.fg_limit);
            ("detail", Json.Str f.fg_detail);
          ])
      shown
  in
  Json.to_string
    (Json.Obj
       [
         ("verdict", Json.Str (if healthy t then "healthy" else "unhealthy"));
         ("windows", num (float_of_int t.windows_seen));
         ("rules", Json.Arr rules);
         ("firings", Json.Arr firing_objs);
         ("firings_total", num (float_of_int (List.length all)));
       ])

let pp_firing ppf f =
  Format.fprintf ppf "window %d at %.0fns [%s] %s" f.fg_window f.fg_t1_ns f.fg_rule
    f.fg_detail

let pp ppf t =
  if healthy t then
    Format.fprintf ppf "healthy (%d windows, %d rules)" t.windows_seen
      (List.length t.rules)
  else begin
    let fs = firings t in
    Format.fprintf ppf "UNHEALTHY: %d firing(s) over %d windows" (List.length fs)
      t.windows_seen;
    List.iteri
      (fun i f -> if i < 8 then Format.fprintf ppf "@\n  %a" pp_firing f)
      fs;
    if List.length fs > 8 then Format.fprintf ppf "@\n  ... %d more" (List.length fs - 8)
  end
