(** Per-worker state for a {!Pool}: one lazily created value per worker
    slot.

    The canonical use is a per-domain replica of something mutable and
    expensive — a deployed device, a telemetry registry, a scratch
    runtime — that must not be shared between domains. Each worker calls
    {!get} with its own worker index from inside a pool task; the value
    is created on first use (in that worker's domain) and reused for the
    rest of the pool's life. After the pool joins, the coordinator walks
    the initialized slots in worker order with {!fold} or {!iter} to
    merge them deterministically (see {!Merge},
    [Telemetry.Registry.merge]).

    Safety contract: slot [w] may only be touched by worker [w] while a
    pool task runs, and by the coordinator between {!Pool.run} calls.
    The pool's barrier provides the happens-before edge; the shard does
    no locking of its own. *)

type 'a t

val create : Pool.t -> (int -> 'a) -> 'a t
(** [create pool init] prepares one empty slot per pool worker; slot [w]
    is filled with [init w] on the first {!get}. *)

val get : 'a t -> worker:int -> 'a
(** This worker's value, creating it on first use. Call only from the
    worker that owns the slot (or from the coordinator between runs). *)

val initialized : 'a t -> int
(** How many slots have been created so far. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit every initialized slot in ascending worker order — the
    deterministic merge order. Coordinator-only. *)

val fold : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Fold over initialized slots in ascending worker order.
    Coordinator-only. *)
