(* Lock-free multi-producer discovery channel. Producers CAS-prepend
   batches onto a shared list head; consumers snapshot the head and
   replay only the suffix they have not absorbed yet. No mutex, no
   barrier: a publish is one allocation plus a CAS retry loop, and a
   snapshot with nothing new is a single atomic load. *)

type 'a node = Nil | Cons of { len : int; batch : 'a list; tail : 'a node }

type 'a t = 'a node Atomic.t

type 'a cursor = { mutable last : 'a node }

let create () = Atomic.make Nil

let node_len = function Nil -> 0 | Cons { len; _ } -> len

let publish t batch =
  if batch <> [] then begin
    let rec loop () =
      let tail = Atomic.get t in
      let node = Cons { len = node_len tail + List.length batch; batch; tail } in
      if not (Atomic.compare_and_set t tail node) then loop ()
    in
    loop ()
  end

let count t = node_len (Atomic.get t)

let cursor () = { last = Nil }

let drain t cursor =
  let head = Atomic.get t in
  if head == cursor.last then []
  else begin
    let stop = cursor.last in
    (* walking newest -> oldest while prepending each batch whole yields
       publication order: oldest batch first, in-batch order preserved *)
    let rec collect acc = function
      | node when node == stop -> acc
      | Nil -> acc
      | Cons { batch; tail; _ } -> collect (batch @ acc) tail
    in
    let items = collect [] head in
    cursor.last <- head;
    items
  end

let all t =
  let rec collect acc = function
    | Nil -> acc
    | Cons { batch; tail; _ } -> collect (batch @ acc) tail
  in
  collect [] (Atomic.get t)
