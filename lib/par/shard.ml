(* One lazily initialized slot per pool worker. No locking: slot w is
   only touched by worker w during a pool task (the pool's join barrier
   publishes the writes to the coordinator). *)

type 'a t = { slots : 'a option array; init : int -> 'a }

let create pool init = { slots = Array.make (Pool.jobs pool) None; init }

let get t ~worker =
  match t.slots.(worker) with
  | Some v -> v
  | None ->
      let v = t.init worker in
      t.slots.(worker) <- Some v;
      v

let initialized t =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 t.slots

let iter t f =
  Array.iteri (fun w -> function Some v -> f w v | None -> ()) t.slots

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun w v -> acc := f !acc w v);
  !acc
