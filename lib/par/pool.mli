(** A reusable fixed-size pool of worker domains with a chunked work
    queue.

    The pool is the repo's one parallel-execution primitive (OCaml 5
    [Domain] + [Mutex]/[Condition]/[Atomic]; no external dependency).
    Callers submit a batch of work with {!run} or {!map_chunks}; the
    calling domain always participates as worker [0], and [jobs - 1]
    pre-spawned domains serve workers [1 .. jobs - 1]. A pool with
    [jobs = 1] spawns no domains at all and degenerates to plain
    sequential execution, so code written against the pool has no
    threading cost on the default path.

    Determinism contract: {!map_chunks} writes each result into the slot
    of its input index, so the result array is a pure function of the
    input and [f] — never of which worker ran which chunk or in what
    order. Any cross-worker communication beyond that is the caller's
    business and should be confined to explicit barriers (run the pool in
    rounds and merge between calls in a fixed order — see
    [Fuzz.Campaign]) or to mutex-guarded accumulators whose contents are
    re-ordered deterministically before use.

    The pool is not reentrant: calling {!run} or {!map_chunks} from
    inside a task deadlocks. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] workers ([jobs - 1] domains). Callers
    should bound [jobs] by {!recommended_jobs}; larger values work but
    cannot run concurrently. *)

val jobs : t -> int
(** Worker count (including the calling domain), always [>= 1]. *)

val close : t -> unit
(** Shut the worker domains down and join them. Idempotent. A pool must
    be closed or the spawned domains keep the process alive; prefer
    {!with_pool}. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and closes it on exit,
    exceptional or not. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] once per worker [w] in [0 .. jobs t - 1],
    concurrently, and returns when all are finished. The calling domain
    executes [f 0]. If any invocation raises, one of the exceptions is
    re-raised (with its backtrace) after all workers finish. *)

val map_chunks :
  t -> ?chunk:int -> (worker:int -> int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_chunks t f xs] is [Array.mapi]-with-a-worker-id over the pool:
    workers claim contiguous chunks of [chunk] indices (default 16) from
    a shared atomic cursor and apply [f ~worker i xs.(i)] to each
    element. Results land at their input index, so the output equals the
    sequential map regardless of scheduling. [worker] identifies the
    executing worker for per-worker state (see {!Shard}). *)

val recommended_jobs : unit -> int
(** The host's available core count (from [Domain.recommended_domain_count]):
    the sensible upper bound for [jobs]. *)
