let reduce f init xs = Array.fold_left f init xs

let concat xs = List.concat (Array.to_list xs)

let dedup_by ~key xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    xs
