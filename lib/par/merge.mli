(** Deterministic folding of per-worker (or per-shard) results.

    Parallel decomposition is only safe to report from when the merge is
    a fixed-order fold of an associative operation: the combination then
    depends on the decomposition (which is fixed), never on scheduling.
    These helpers make that order explicit — always ascending slot/index
    order, the same order {!Shard.iter} uses. *)

val reduce : ('a -> 'a -> 'a) -> 'a -> 'a array -> 'a
(** [reduce f init xs] folds [xs] left-to-right. [f] should be
    associative for the parallel decomposition to be meaningful. *)

val concat : 'a list array -> 'a list
(** Concatenate per-slot lists in slot order. *)

val dedup_by : key:('a -> string) -> 'a list -> 'a list
(** Keep the first occurrence of every key, preserving list order — the
    cross-shard deduplication step. Feed it a list already sorted by the
    deterministic global order (e.g. global execution index) so "first"
    is well defined. *)
