(* Fixed pool of worker domains fed generations of work through one
   mutex/condition pair. The calling domain is always worker 0, so a
   jobs=1 pool is pure sequential execution with no domains spawned. *)

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t;  (* workers: a new generation was posted *)
  idle : Condition.t;  (* coordinator: a worker finished its share *)
  mutable generation : int;
  mutable task : (int -> unit) option;
  mutable pending : int;  (* spawned workers still in the current generation *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

let recommended_jobs () = Domain.recommended_domain_count ()

let attempt f index =
  try
    f index;
    None
  with e -> Some (e, Printexc.get_raw_backtrace ())

(* Worker w >= 1: wait for the generation counter to move, run its share,
   report back. Exceptions are stored (first wins) and re-raised by the
   coordinator, never swallowed. *)
let worker_loop t index =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while (not t.closing) && t.generation = !seen do
      Condition.wait t.work t.lock
    done;
    if t.closing then begin
      Mutex.unlock t.lock;
      running := false
    end
    else begin
      seen := t.generation;
      let f = match t.task with Some f -> f | None -> assert false in
      Mutex.unlock t.lock;
      let err = attempt f index in
      Mutex.lock t.lock;
      (match err with
      | Some _ when t.failure = None -> t.failure <- err
      | Some _ | None -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.idle;
      Mutex.unlock t.lock
    end
  done

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      generation = 0;
      task = None;
      pending = 0;
      failure = None;
      closing = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.jobs

let close t =
  Mutex.lock t.lock;
  let ds = t.domains in
  t.closing <- true;
  t.domains <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join ds

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let run t f =
  if t.closing then invalid_arg "Par.Pool.run: pool is closed";
  if t.jobs = 1 then f 0
  else begin
    Mutex.lock t.lock;
    t.task <- Some f;
    t.failure <- None;
    t.pending <- t.jobs - 1;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    let own = attempt f 0 in
    Mutex.lock t.lock;
    while t.pending > 0 do
      Condition.wait t.idle t.lock
    done;
    let worker = t.failure in
    t.task <- None;
    t.failure <- None;
    Mutex.unlock t.lock;
    match (own, worker) with
    | Some (e, bt), _ | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None, None -> ()
  end

let map_chunks t ?(chunk = 16) f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let chunk = max 1 chunk in
    let out = Array.make n None in
    let cursor = Atomic.make 0 in
    run t (fun w ->
        let rec grab () =
          let start = Atomic.fetch_and_add cursor chunk in
          if start < n then begin
            let stop = min n (start + chunk) in
            for i = start to stop - 1 do
              out.(i) <- Some (f ~worker:w i xs.(i))
            done;
            grab ()
          end
        in
        grab ());
    Array.map (function Some v -> v | None -> assert false) out
  end
