(** Lock-free discovery channel for asynchronous shard integration.

    An ['a t] is a multi-producer append-only log built from a single
    atomic list head. Workers {!publish} batches of discoveries
    (coverage labels, corpus entries, divergence sightings) without
    taking any lock — a publish is one [Atomic.compare_and_set] retry
    loop — and each worker absorbs everyone else's discoveries by
    {!drain}ing through a private {!cursor} at whatever cadence suits
    its hot loop. Nothing ever blocks: there is no barrier, no mutex
    and no wait, which is what lets the async fuzz campaign keep every
    domain saturated (see [Fuzz.Campaign] and DESIGN.md §15).

    Ordering contract: {!drain} returns items in publication order
    (oldest batch first, in-batch order preserved), but publication
    order itself is a race between producers. Consumers must therefore
    be order-insensitive — coverage bitmaps, corpus sets and
    fingerprint dedup all are. *)

type 'a t
(** The shared channel. *)

type 'a cursor
(** A private per-consumer position in the log. *)

val create : unit -> 'a t
(** A fresh, empty channel. *)

val publish : 'a t -> 'a list -> unit
(** [publish t batch] atomically prepends [batch] to the log. Empty
    batches are free (no allocation, no CAS). Safe from any domain. *)

val count : 'a t -> int
(** Total number of items ever published. One atomic load. *)

val cursor : unit -> 'a cursor
(** A fresh cursor positioned before the first item, so the first
    {!drain} returns everything published so far. *)

val drain : 'a t -> 'a cursor -> 'a list
(** [drain t c] returns every item published since the last drain
    through [c] (publication order) and advances [c] past them. When
    nothing is new this is a single atomic load returning [[]]. Safe
    to call concurrently with publishers; each cursor must belong to
    one consumer. *)

val all : 'a t -> 'a list
(** Every item ever published, oldest first, without a cursor. *)
