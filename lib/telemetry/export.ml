(* Exporters over the span store and the metrics registry:
   - Chrome trace_event JSON (chrome://tracing, Perfetto)
   - JSONL span dumps (one object per line)
   - plain text span listing
   - Prometheus text exposition of the registry *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
          Buffer.add_char b '\\';
          Buffer.add_char b c
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ---------------- Chrome trace_event ---------------- *)

(* One track (tid) per distinct span name, in order of first appearance;
   "X" complete events with microsecond timestamps. *)
let chrome_trace store =
  let spans = Span.spans store in
  let tids = Hashtbl.create 16 in
  let track_names = ref [] in
  let tid_of name =
    match Hashtbl.find_opt tids name with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tids in
        Hashtbl.add tids name tid;
        track_names := (tid, name) :: !track_names;
        tid
  in
  List.iter (fun sp -> ignore (tid_of sp.Span.sp_name)) spans;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  Buffer.add_string b " {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"netdebug device\"}}";
  List.iter
    (fun (tid, name) ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid (json_escape name)))
    (List.rev !track_names);
  List.iter
    (fun sp ->
      let args = Buffer.create 64 in
      Buffer.add_string args (Printf.sprintf "\"packet\":%d" sp.Span.sp_packet);
      if sp.Span.sp_bytes > 0 then
        Buffer.add_string args (Printf.sprintf ",\"bytes\":%d" sp.Span.sp_bytes);
      (match sp.Span.sp_note with
      | Some n -> Buffer.add_string args (Printf.sprintf ",\"note\":\"%s\"" (json_escape n))
      | None -> ());
      if sp.Span.sp_drop then Buffer.add_string args ",\"drop\":true";
      if sp.Span.sp_fault then Buffer.add_string args ",\"fault\":true";
      Buffer.add_string b
        (Printf.sprintf
           ",\n {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.6f,\"dur\":%.6f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
           (json_escape sp.Span.sp_name)
           (Span.kind_to_string sp.Span.sp_kind)
           (sp.Span.sp_start_ns /. 1000.0)
           ((sp.Span.sp_end_ns -. sp.Span.sp_start_ns) /. 1000.0)
           (tid_of sp.Span.sp_name) (Buffer.contents args)))
    spans;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ---------------- JSONL ---------------- *)

let jsonl store =
  let b = Buffer.create 4096 in
  Span.iter store (fun sp ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":%d,\"parent\":%d,\"packet\":%d,\"kind\":\"%s\",\"name\":\"%s\",\"start_ns\":%.3f,\"end_ns\":%.3f,\"bytes\":%d,\"drop\":%b,\"fault\":%b"
           sp.Span.sp_id sp.Span.sp_parent sp.Span.sp_packet
           (Span.kind_to_string sp.Span.sp_kind)
           (json_escape sp.Span.sp_name)
           sp.Span.sp_start_ns sp.Span.sp_end_ns sp.Span.sp_bytes sp.Span.sp_drop
           sp.Span.sp_fault);
      (match sp.Span.sp_note with
      | Some n -> Buffer.add_string b (Printf.sprintf ",\"note\":\"%s\"" (json_escape n))
      | None -> ());
      Buffer.add_string b "}\n");
  Buffer.contents b

(* ---------------- plain text ---------------- *)

let text store =
  let b = Buffer.create 4096 in
  Span.iter store (fun sp ->
      Buffer.add_string b
        (Printf.sprintf "[%12.1f .. %12.1f] pkt=%-5d %-8s %-24s" sp.Span.sp_start_ns
           sp.Span.sp_end_ns sp.Span.sp_packet
           (Span.kind_to_string sp.Span.sp_kind)
           sp.Span.sp_name);
      if sp.Span.sp_bytes > 0 then Buffer.add_string b (Printf.sprintf " %4dB" sp.Span.sp_bytes);
      (match sp.Span.sp_note with
      | Some n -> Buffer.add_string b (" " ^ n)
      | None -> ());
      if sp.Span.sp_drop then Buffer.add_string b " DROP";
      if sp.Span.sp_fault then Buffer.add_string b " FAULT";
      Buffer.add_char b '\n');
  Buffer.add_string b
    (Printf.sprintf "%d spans retained, %d evicted (capacity %d)\n" (Span.count store)
       (Span.dropped store) (Span.capacity store));
  Buffer.contents b

(* ---------------- Prometheus text exposition ---------------- *)

let prom_name name =
  let b = Buffer.create (String.length name + 9) in
  Buffer.add_string b "netdebug_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* HELP text is a single logical line in the exposition format: literal
   backslashes and newlines must be escaped per the Prometheus spec. *)
let prom_escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_quantiles = [ 50.0; 90.0; 99.0; 99.9 ]

let prometheus registry =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, help, value) ->
      let n = prom_name name in
      if help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" n (prom_escape_help help));
      match value with
      | Registry.Counter v ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %Ld\n" n n v)
      | Registry.Gauge v ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %.6g\n" n n v)
      | Registry.Histogram h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
          List.iter
            (fun q ->
              (* label derived from the value itself, so adding or changing a
                 quantile can never mislabel the series *)
              Buffer.add_string b
                (Printf.sprintf "%s{quantile=\"%g\"} %.6g\n" n (q /. 100.)
                   (Stats.Histogram.percentile h q)))
            prom_quantiles;
          Buffer.add_string b (Printf.sprintf "%s_sum %.6g\n" n (Stats.Histogram.total h));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n (Stats.Histogram.count h));
          Buffer.add_string b
            (Printf.sprintf "%s_min %.6g\n" n (Stats.Histogram.min_value h));
          Buffer.add_string b
            (Printf.sprintf "%s_max %.6g\n" n (Stats.Histogram.max_value h)))
    (Registry.snapshot registry);
  Buffer.contents b
