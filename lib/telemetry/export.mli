(** Exporters: render the span store and metrics registry into standard
    observability formats. All functions are pure renderers over current
    contents — callers decide where the bytes go. *)

val chrome_trace : Span.t -> string
(** Chrome [trace_event] JSON ({"traceEvents": [...]}) loadable in
    chrome://tracing and Perfetto. One track per distinct span name;
    complete ("X") events with microsecond timestamps; packet id, byte
    count, notes and drop/fault marks in [args]. *)

val jsonl : Span.t -> string
(** One JSON object per span per line, in record order. *)

val text : Span.t -> string
(** Human-readable listing with a retained/evicted footer, so truncated
    span stores are never silently read as complete. *)

val prometheus : Registry.t -> string
(** Prometheus text exposition. Metric names are sanitized and prefixed
    with [netdebug_]; HELP text has backslashes and newlines escaped per
    the exposition format; histograms export as summaries
    (p50/p90/p99/p99.9 with quantile labels derived from the values, plus
    [_sum]/[_count]/[_min]/[_max]). *)

val json_escape : string -> string
