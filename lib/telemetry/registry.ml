(* Single registration point for named device metrics. Counters live in a
   Stats.Counter.Set (shared with the device's management-channel view, so
   dynamically created program counters surface here too); gauges are
   read-on-snapshot callbacks; histograms are Stats.Histogram. *)

type value =
  | Counter of int64
  | Gauge of float
  | Histogram of Stats.Histogram.t

type t = {
  counters : Stats.Counter.Set.t;
  helps : (string, string) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  histograms : (string, Stats.Histogram.t) Hashtbl.t;
}

let create ?counters () =
  {
    counters = (match counters with Some s -> s | None -> Stats.Counter.Set.create ());
    helps = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let counter_set t = t.counters

let set_help t name help = if help <> "" then Hashtbl.replace t.helps name help

let help t name = match Hashtbl.find_opt t.helps name with Some h -> h | None -> ""

let counter t ?(help = "") name =
  set_help t name help;
  Stats.Counter.Set.find t.counters name

let gauge t ?(help = "") name read =
  set_help t name help;
  Hashtbl.replace t.gauges name read

let histogram t ?(help = "") name =
  set_help t name help;
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Stats.Histogram.create () in
      Hashtbl.replace t.histograms name h;
      h

(* Fold a worker shard's metrics into [into]. Help text is a single
   Hashtbl.replace binding per name — when two shards registered the same
   metric the help must end up bound exactly once, never stacked with
   Hashtbl.add (a stacked binding would make the later removal/replace in
   set_help expose a stale duplicate and double-count the registration).

   [prefix] namespaces every folded metric: a fleet coordinator merging N
   per-device registries passes a distinct prefix per device so equal
   names (stage/<n>/fault_hits, ...) land as distinct fleet metrics
   instead of summing. With a prefix the shared-counter-set shortcut no
   longer applies — the prefixed names are new even in a shared set. *)
let merge ?(prefix = "") ~into src =
  let pre name = if prefix = "" then name else prefix ^ name in
  if prefix <> "" || into.counters != src.counters then
    List.iter
      (fun (name, v) -> Stats.Counter.Set.add into.counters (pre name) v)
      (Stats.Counter.Set.to_alist src.counters);
  Hashtbl.iter
    (fun name h ->
      let name = pre name in
      let dst =
        match Hashtbl.find_opt into.histograms name with
        | Some d -> d
        | None ->
            let d = Stats.Histogram.create () in
            Hashtbl.replace into.histograms name d;
            d
      in
      (* in-place absorb: owners of [dst] keep their live handle *)
      if dst != h then Stats.Histogram.absorb dst h)
    src.histograms;
  Hashtbl.iter
    (fun name help ->
      let name = pre name in
      if Hashtbl.find_opt into.helps name = None then set_help into name help)
    src.helps

let snapshot t =
  let counters =
    List.map
      (fun (n, v) -> (n, help t n, Counter v))
      (Stats.Counter.Set.to_alist t.counters)
  in
  let gauges =
    Hashtbl.fold (fun n read acc -> (n, help t n, Gauge (read ())) :: acc) t.gauges []
  in
  let hists =
    Hashtbl.fold (fun n h acc -> (n, help t n, Histogram h) :: acc) t.histograms []
  in
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (counters @ gauges @ hists)

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
    (fun ppf (name, _, v) ->
      match v with
      | Counter c -> Format.fprintf ppf "%-40s %Ld" name c
      | Gauge g -> Format.fprintf ppf "%-40s %.6g" name g
      | Histogram h -> Format.fprintf ppf "%-40s %a" name Stats.Histogram.pp_summary h)
    ppf (snapshot t)
