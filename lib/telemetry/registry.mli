(** Metrics registry: the single registration point for a device's named
    counters, gauges and histograms.

    Counters are backed by a {!Stats.Counter.Set} (pass the device's set to
    {!create} so counters created elsewhere — e.g. per-program counters made
    on demand — appear in the same namespace). Gauges are callbacks sampled
    at {!snapshot} time (queue depths, static pipeline facts). Histograms
    are {!Stats.Histogram} values updated by the owner. Registration
    attaches optional help text that exporters surface. *)

type value =
  | Counter of int64
  | Gauge of float
  | Histogram of Stats.Histogram.t

type t

val create : ?counters:Stats.Counter.Set.t -> unit -> t
(** Wrap an existing counter set, or create a fresh one. *)

val counter_set : t -> Stats.Counter.Set.t

val counter : t -> ?help:string -> string -> Stats.Counter.t
(** Find-or-create; repeated registration returns the same counter. *)

val gauge : t -> ?help:string -> string -> (unit -> float) -> unit
(** Register (or replace) a callback gauge. *)

val histogram : t -> ?help:string -> string -> Stats.Histogram.t
(** Find-or-create. *)

val help : t -> string -> string
(** Help text attached at registration; "" when none. *)

val merge : ?prefix:string -> into:t -> t -> unit
(** [merge ~into src] folds [src]'s metrics into [into]: counters are
    added by name (skipped entirely when both registries share one
    counter set — the values are already there), histogram datasets are
    absorbed in place into [into]'s handles so owners holding them keep
    seeing updates, and help text for a name already registered in
    [into] is kept as-is — merging two shards that registered the same
    metric binds its help exactly once. Gauges are {e not} merged: they
    are live callbacks closed over [src]'s owner and would outlive it.
    [src] is left unchanged. This is the deterministic join step for
    per-worker registry shards (see [Par.Shard]): folding shards in
    ascending worker order yields the same totals as a sequential run,
    because counter addition and histogram absorption are associative
    and commutative.

    [prefix] (default [""]) is prepended to every folded metric name:
    the namespacing that lets N per-device registries fold into one
    fleet registry without collisions — [stage/<n>/fault_hits] from two
    devices merged under prefixes ["dev/a/"] and ["dev/b/"] stay
    distinguishable instead of summing. With a non-empty prefix the
    shared-counter-set skip does not apply (the prefixed names are new
    names even in a shared set). *)

val snapshot : t -> (string * string * value) list
(** All metrics — every counter in the set, each gauge read now, each
    histogram — as (name, help, value), sorted by name. *)

val pp : Format.formatter -> t -> unit
