(** Bounded, allocation-lean store of typed per-packet spans.

    Every sampled packet traversal through the device becomes a tree of
    spans: a [Packet] root covering arrival to departure, with [Rx_queue],
    [Parse], [Stage], [Deparse] and [Tx] children carrying virtual-time
    intervals, byte counts and drop/fault annotations. Spans live in flat
    parallel arrays behind a ring-buffer bound (oldest spans are evicted,
    {!dropped} counts them); recording a span is ten scalar array writes —
    no per-span allocation on the hot path. Span names and annotations are
    {!intern}ed strings referenced by integer id. *)

type kind = Packet | Rx_queue | Parse | Stage | Deparse | Tx

val kind_to_string : kind -> string

val flag_drop : int
(** Bit set in [flags] when the span ends in a drop. *)

val flag_fault : int
(** Bit set in [flags] when an injected fault fired inside the span. *)

val no_note : int
(** Sentinel for "no annotation" (avoids boxing an option on the hot path). *)

val no_parent : int
(** Sentinel parent id for root spans. *)

(** Materialized read-back view (allocates; off the hot path). *)
type span = {
  sp_id : int;  (** unique, increasing with record order of id issue *)
  sp_parent : int;  (** span id of the parent, or {!no_parent} *)
  sp_packet : int;  (** device packet id the span belongs to *)
  sp_kind : kind;
  sp_name : string;  (** e.g. "stage[2]:ma:ipv4_lpm", "tx[1]" *)
  sp_start_ns : float;  (** virtual time *)
  sp_end_ns : float;
  sp_bytes : int;  (** packet bytes for packet-level spans, else 0 *)
  sp_drop : bool;
  sp_fault : bool;
  sp_note : string option;  (** action name, drop reason, … *)
}

type t

val create : ?capacity:int -> ?sampling:int -> unit -> t
(** Ring of [capacity] spans (default 8192). [sampling] as for
    {!set_sampling} (default 1: every packet). *)

val intern : t -> string -> int
(** Intern a name/annotation; stable id per distinct string. *)

val name_of : t -> int -> string
(** Inverse of {!intern}; "" for unknown ids. *)

val set_sampling : t -> int -> unit
(** [set_sampling t n]: {!sample} accepts 1-in-[n] packets ([0] disables
    spans entirely). Resets the phase so the next packet is sampled. *)

val sampling : t -> int

val sample : t -> bool
(** Per-packet sampling decision; advances the 1-in-n phase. *)

val next_id : t -> int
(** Reserve a span id without recording — lets a root reserve its id
    before its children record, then fill itself in at packet end. *)

val issued : t -> int
(** Ids handed out so far; a watermark for "spans recorded since". *)

val record :
  t ->
  id:int ->
  parent:int ->
  packet:int ->
  kind:kind ->
  name:int ->
  t0:float ->
  t1:float ->
  bytes:int ->
  flags:int ->
  note:int ->
  unit
(** Record a completed span under a previously reserved id. [name] and
    [note] are interned ids ({!no_note} for none). *)

val add :
  t ->
  parent:int ->
  packet:int ->
  kind:kind ->
  name:int ->
  t0:float ->
  t1:float ->
  bytes:int ->
  flags:int ->
  note:int ->
  int
(** {!next_id} + {!record}; returns the new span's id. *)

val count : t -> int
(** Spans currently retained. *)

val dropped : t -> int
(** Spans evicted by the ring bound since creation/{!clear}. *)

val capacity : t -> int

val clear : t -> unit
(** Forget all spans and reset ids and sampling phase (interned names are
    kept). *)

val spans : t -> span list
(** Retained spans in record order (oldest first). *)

val iter : t -> (span -> unit) -> unit

val spans_for_packet : t -> int -> span list
