(* Flat, bounded span store. One record is ten scalar writes into parallel
   arrays — no closure, list or record allocation on the packet hot path.
   Strings (span names, annotations) are interned once and referenced by
   integer id thereafter. *)

type kind = Packet | Rx_queue | Parse | Stage | Deparse | Tx

let kind_tag = function
  | Packet -> 0
  | Rx_queue -> 1
  | Parse -> 2
  | Stage -> 3
  | Deparse -> 4
  | Tx -> 5

let kind_of_tag = function
  | 0 -> Packet
  | 1 -> Rx_queue
  | 2 -> Parse
  | 3 -> Stage
  | 4 -> Deparse
  | _ -> Tx

let kind_to_string = function
  | Packet -> "packet"
  | Rx_queue -> "rx_queue"
  | Parse -> "parse"
  | Stage -> "stage"
  | Deparse -> "deparse"
  | Tx -> "tx"

let flag_drop = 1

let flag_fault = 2

let no_note = -1

let no_parent = -1

type span = {
  sp_id : int;
  sp_parent : int;
  sp_packet : int;
  sp_kind : kind;
  sp_name : string;
  sp_start_ns : float;
  sp_end_ns : float;
  sp_bytes : int;
  sp_drop : bool;
  sp_fault : bool;
  sp_note : string option;
}

type t = {
  capacity : int;
  ids : int array;
  parents : int array;
  packets : int array;
  kinds : int array;
  names : int array;
  starts : float array;
  ends_ : float array;
  byts : int array;
  flgs : int array;
  notes : int array;
  mutable next : int;  (* next write slot *)
  mutable total : int; (* spans ever recorded *)
  intern_tbl : (string, int) Hashtbl.t;
  mutable intern_arr : string array;
  mutable n_interned : int;
  mutable sample_every : int; (* 0 = spans off; n >= 1 = 1-in-n packets *)
  mutable tick : int;
  mutable next_id : int;
}

let create ?(capacity = 8192) ?(sampling = 1) () =
  if capacity < 1 then invalid_arg "Span.create: capacity must be positive";
  {
    capacity;
    ids = Array.make capacity 0;
    parents = Array.make capacity no_parent;
    packets = Array.make capacity 0;
    kinds = Array.make capacity 0;
    names = Array.make capacity 0;
    starts = Array.make capacity 0.0;
    ends_ = Array.make capacity 0.0;
    byts = Array.make capacity 0;
    flgs = Array.make capacity 0;
    notes = Array.make capacity no_note;
    next = 0;
    total = 0;
    intern_tbl = Hashtbl.create 32;
    intern_arr = Array.make 32 "";
    n_interned = 0;
    sample_every = max 0 sampling;
    tick = 0;
    next_id = 0;
  }

let intern t s =
  match Hashtbl.find t.intern_tbl s with
  | id -> id
  | exception Not_found ->
      let id = t.n_interned in
      if id = Array.length t.intern_arr then begin
        let bigger = Array.make (2 * Array.length t.intern_arr) "" in
        Array.blit t.intern_arr 0 bigger 0 id;
        t.intern_arr <- bigger
      end;
      t.intern_arr.(id) <- s;
      t.n_interned <- id + 1;
      Hashtbl.add t.intern_tbl s id;
      id

let name_of t id = if id >= 0 && id < t.n_interned then t.intern_arr.(id) else ""

let set_sampling t n =
  t.sample_every <- max 0 n;
  t.tick <- 0

let sampling t = t.sample_every

let sample t =
  if t.sample_every <= 0 then false
  else begin
    let k = t.tick in
    t.tick <- k + 1;
    k mod t.sample_every = 0
  end

let next_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let issued t = t.next_id

let record t ~id ~parent ~packet ~kind ~name ~t0 ~t1 ~bytes ~flags ~note =
  let i = t.next in
  t.ids.(i) <- id;
  t.parents.(i) <- parent;
  t.packets.(i) <- packet;
  t.kinds.(i) <- kind_tag kind;
  t.names.(i) <- name;
  t.starts.(i) <- t0;
  t.ends_.(i) <- t1;
  t.byts.(i) <- bytes;
  t.flgs.(i) <- flags;
  t.notes.(i) <- note;
  t.next <- (if i + 1 = t.capacity then 0 else i + 1);
  t.total <- t.total + 1

let add t ~parent ~packet ~kind ~name ~t0 ~t1 ~bytes ~flags ~note =
  let id = next_id t in
  record t ~id ~parent ~packet ~kind ~name ~t0 ~t1 ~bytes ~flags ~note;
  id

let count t = min t.total t.capacity

let dropped t = max 0 (t.total - t.capacity)

let capacity t = t.capacity

let clear t =
  t.next <- 0;
  t.total <- 0;
  t.tick <- 0;
  t.next_id <- 0

let materialize t i =
  {
    sp_id = t.ids.(i);
    sp_parent = t.parents.(i);
    sp_packet = t.packets.(i);
    sp_kind = kind_of_tag t.kinds.(i);
    sp_name = name_of t t.names.(i);
    sp_start_ns = t.starts.(i);
    sp_end_ns = t.ends_.(i);
    sp_bytes = t.byts.(i);
    sp_drop = t.flgs.(i) land flag_drop <> 0;
    sp_fault = t.flgs.(i) land flag_fault <> 0;
    sp_note = (if t.notes.(i) < 0 then None else Some (name_of t t.notes.(i)));
  }

let spans t =
  let n = count t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun j -> materialize t ((start + j) mod t.capacity))

let iter t f =
  let n = count t in
  let start = if t.total <= t.capacity then 0 else t.next in
  for j = 0 to n - 1 do
    f (materialize t ((start + j) mod t.capacity))
  done

let spans_for_packet t id = List.filter (fun sp -> sp.sp_packet = id) (spans t)
